// Low-overhead event tracing for the engines and the simulated HTM.
//
// Layering (see docs/observability.md):
//
//   * compile-time kill switch — building with -DHCF_TELEMETRY=OFF (the
//     CMake option; it drops the HCF_TELEMETRY define) turns every hook in
//     this header into an empty inline function: zero instructions, zero
//     data, benchmarking builds pay nothing.
//   * runtime gate — with telemetry compiled in, recording still defaults
//     to OFF; hooks cost one relaxed bool load until telemetry::set_enabled
//     (or the HCF_TELEMETRY_ENABLE=1 environment variable) switches them
//     on. Benchmarks expose this as --trace=FILE.
//
// Recording writes one 16-byte event into the calling thread's private
// lock-free ring (ring_buffer.hpp); no hook blocks, allocates, or touches
// shared mutable state, so hooks may sit directly on engine hot paths —
// but NEVER inside an htm::attempt transaction body (the linter's
// tx-telemetry-call rule): an event record is a non-transactional side
// effect that would survive an abort and replay on retry, and the paper's
// phases are delimited outside transactions anyway.
//
// Sampled operation latency additionally feeds a util::LatencyHistogram so
// summaries can report p50/p99/p999 without tracing every operation.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "telemetry/event.hpp"
#include "telemetry/ring_buffer.hpp"
#include "util/histogram.hpp"
#include "util/thread_id.hpp"

namespace hcf::telemetry {

// Every 64th operation gets timed when telemetry is enabled; cheap enough
// to leave on and dense enough for stable percentiles over a bench window.
inline constexpr std::uint32_t kLatencySamplePeriod = 64;

#if defined(HCF_TELEMETRY)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

#if defined(HCF_TELEMETRY)

namespace detail {

// The runtime gate lives OUTSIDE Domain on purpose: the rings are ~100 KiB
// of atomics per registered thread, and value-initializing them on first
// use is far too expensive to hide inside the disabled-mode fast path
// (under TSan it takes longer than a whole bench measurement window). The
// gate itself is constinit — constant-initialized at load time, so
// `enabled()` is exactly one relaxed load with no magic-static guard in
// front of it — and `enabled()` never forces the Domain into existence;
// the rings materialize only once someone actually turns recording on.
inline constinit RuntimeGate g_gate;

inline RuntimeGate& gate() noexcept { return g_gate; }

// One-time start-up hook: honour the HCF_TELEMETRY_ENABLE environment
// variable. Runs during static initialization; reading g_gate before that
// is safe (constinit zero-state = disabled).
struct EnvGateInit {
  EnvGateInit() noexcept {
    const char* env = std::getenv("HCF_TELEMETRY_ENABLE");
    if (env != nullptr && std::strcmp(env, "0") != 0) g_gate.set(true);
  }
};
inline EnvGateInit g_env_gate_init;

}  // namespace detail

// Holds the heavyweight telemetry state: one event ring per dense thread
// id plus the sampled-latency histogram. Constructed lazily on the first
// enabled record (or snapshot/reset), never by the disabled fast path.
class Domain {
 public:
  static Domain& instance() noexcept {
    static Domain d;
    return d;
  }

  RuntimeGate& gate() noexcept { return detail::gate(); }
  EventRing<>& ring(std::size_t tid) noexcept { return rings_[tid].value; }
  util::LatencyHistogram& latency() noexcept { return latency_; }
  util::LatencyHistogram& park_latency() noexcept { return park_latency_; }

  std::chrono::steady_clock::time_point epoch() const noexcept {
    return epoch_;
  }

  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Snapshot of every thread's retained events plus drop accounting.
  // Safe concurrent with recording (events arriving mid-snapshot may or
  // may not be included).
  void snapshot_all(
      std::vector<std::pair<std::size_t, std::vector<Event>>>& out) const {
    for (std::size_t tid = 0; tid < util::kMaxThreads; ++tid) {
      const auto& ring = rings_[tid].value;
      if (ring.pushed() == 0) continue;
      std::vector<Event> events;
      ring.snapshot(events);
      out.emplace_back(tid, std::move(events));
    }
  }

  std::uint64_t total_pushed() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& r : rings_) sum += r.value.pushed();
    return sum;
  }

  std::uint64_t total_dropped() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& r : rings_) sum += r.value.dropped();
    return sum;
  }

  // Test/bench hook: callers must quiesce recording threads first.
  void reset() noexcept {
    for (auto& r : rings_) {
      // Writer ownership: reset()'s contract quiesces every recording
      // thread, so claiming each ring's writer capability here is sound.
      r.value.assume_writer();
      r.value.clear();
    }
    latency_.reset();
    park_latency_.reset();
  }

 private:
  Domain() : epoch_(std::chrono::steady_clock::now()) {}

  std::chrono::steady_clock::time_point epoch_;
  util::LatencyHistogram latency_;
  util::LatencyHistogram park_latency_;
  std::array<util::CacheAligned<EventRing<>>, util::kMaxThreads> rings_{};
};

inline bool enabled() noexcept { return detail::gate().enabled(); }

inline void set_enabled(bool on) noexcept { detail::gate().set(on); }

namespace detail {
// The shard the calling thread is currently executing in (sharded
// meta-engines scope it around the inner engine's execute), stamped onto
// every event so exporters can roll traffic up per shard. Plain
// thread_local — only the owning thread ever touches it.
inline thread_local std::uint8_t t_current_shard = kNoShardId;
}  // namespace detail

inline std::uint8_t current_shard() noexcept {
  return detail::t_current_shard;
}

// RAII shard tag: every event recorded while the scope is alive carries
// the shard index. Nests (saves/restores), so a meta-engine wrapping
// another meta-engine keeps the innermost tag.
class ShardScope {
 public:
  explicit ShardScope(std::size_t shard) noexcept
      : saved_(detail::t_current_shard) {
    detail::t_current_shard =
        shard < kNoShardId ? static_cast<std::uint8_t>(shard) : kNoShardId;
  }
  ~ShardScope() { detail::t_current_shard = saved_; }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  std::uint8_t saved_;
};

inline void record(EventType type, std::uint8_t code = 0,
                   std::uint32_t arg = 0) noexcept {
  if (!enabled()) return;
  Domain& d = Domain::instance();
  Event e;
  e.ts_ns = d.now_ns();
  e.type = type;
  e.code = code;
  e.shard = detail::t_current_shard;
  e.arg = arg;
  auto& ring = d.ring(util::this_thread_id());
  // Writer ownership: rings are indexed by dense thread id, so the ring
  // selected above belongs to the calling thread by construction.
  ring.assume_writer();
  ring.push(e);
}

// True on the sampled subset of operations (drivers wrap those in clock
// reads and report via op_latency). Advances this thread's sample phase
// only while enabled, so disabled runs stay branch-predictable.
inline bool should_sample_op() noexcept {
  if (!enabled()) return false;
  thread_local std::uint32_t phase = 0;
  return ++phase % kLatencySamplePeriod == 0;
}

inline void op_latency(std::uint64_t ns) noexcept {
  if (!enabled()) return;
  Domain& d = Domain::instance();
  d.latency().record(ns);
  record(EventType::OpLatency, 0,
         ns > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(ns));
}

// ---- parking hooks (util/parking.hpp calls these around kernel waits) ----
// park_begin records the Park event and returns the timestamp park_end
// subtracts for the park-latency histogram; both fold to one relaxed load
// while telemetry is disabled (the syscall they bracket dwarfs the clock
// reads when it is enabled).

inline std::uint64_t park_begin() noexcept {
  if (!enabled()) return 0;
  record(EventType::Park);
  return Domain::instance().now_ns();
}

inline void park_end(std::uint64_t t0, bool spurious) noexcept {
  if (!enabled()) return;
  Domain& d = Domain::instance();
  const std::uint64_t ns = t0 == 0 ? 0 : d.now_ns() - t0;
  d.park_latency().record(ns);
  record(EventType::Unpark, spurious ? 1 : 0,
         ns > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(ns));
}

inline void reset() noexcept { Domain::instance().reset(); }

// ---- Mode-independent snapshot API (exporters build on these) ----------

// Appends (thread id, events oldest-first) for every thread that recorded.
inline void snapshot_all(
    std::vector<std::pair<std::size_t, std::vector<Event>>>& out) {
  Domain::instance().snapshot_all(out);
}

inline std::uint64_t total_pushed() noexcept {
  return Domain::instance().total_pushed();
}
inline std::uint64_t total_dropped() noexcept {
  return Domain::instance().total_dropped();
}
// Upper bound of the latency bucket containing quantile q, in ns.
inline std::uint64_t latency_percentile(double q) noexcept {
  return Domain::instance().latency().percentile(q);
}
inline std::uint64_t latency_samples() noexcept {
  return Domain::instance().latency().total();
}
// Same, for time spent parked in kernel waits.
inline std::uint64_t park_latency_percentile(double q) noexcept {
  return Domain::instance().park_latency().percentile(q);
}
inline std::uint64_t park_latency_samples() noexcept {
  return Domain::instance().park_latency().total();
}

#else  // !HCF_TELEMETRY — every hook folds to nothing.

inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
inline std::uint8_t current_shard() noexcept { return kNoShardId; }
class ShardScope {
 public:
  explicit ShardScope(std::size_t) noexcept {}
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;
};
inline void record(EventType, std::uint8_t = 0, std::uint32_t = 0) noexcept {}
inline bool should_sample_op() noexcept { return false; }
inline void op_latency(std::uint64_t) noexcept {}
inline std::uint64_t park_begin() noexcept { return 0; }
inline void park_end(std::uint64_t, bool) noexcept {}
inline void reset() noexcept {}

inline void snapshot_all(
    std::vector<std::pair<std::size_t, std::vector<Event>>>&) {}
inline std::uint64_t total_pushed() noexcept { return 0; }
inline std::uint64_t total_dropped() noexcept { return 0; }
inline std::uint64_t latency_percentile(double) noexcept { return 0; }
inline std::uint64_t latency_samples() noexcept { return 0; }
inline std::uint64_t park_latency_percentile(double) noexcept { return 0; }
inline std::uint64_t park_latency_samples() noexcept { return 0; }

#endif  // HCF_TELEMETRY

// ---- Typed convenience hooks (the event vocabulary engines call) ----------
// `phase` parameters are core::Phase values; taken as integers so this
// header does not depend on core/.

inline void phase_enter(int phase) noexcept {
  record(EventType::PhaseEnter, static_cast<std::uint8_t>(phase));
}
inline void phase_exit(int phase, bool completed) noexcept {
  record(EventType::PhaseExit, static_cast<std::uint8_t>(phase),
         completed ? 1 : 0);
}
inline void htm_commit(bool read_only) noexcept {
  record(EventType::HtmCommit, read_only ? 1 : 0);
}
inline void htm_abort(int cause) noexcept {
  record(EventType::HtmAbort, static_cast<std::uint8_t>(cause));
}
inline void combine_begin(std::size_t ops_selected) noexcept {
  record(EventType::CombineBegin, 0,
         static_cast<std::uint32_t>(ops_selected));
}
inline void combine_end(std::size_t ops_applied) noexcept {
  record(EventType::CombineEnd, 0, static_cast<std::uint32_t>(ops_applied));
}
inline void sel_lock_acquired() noexcept {
  record(EventType::SelLockAcquire);
}
inline void sel_lock_released() noexcept {
  record(EventType::SelLockRelease);
}
inline void shard_route(std::size_t shard) noexcept {
  record(EventType::ShardRoute, static_cast<std::uint8_t>(shard));
}
inline void cross_shard_begin(std::size_t num_shards) noexcept {
  record(EventType::CrossShardBegin, 0,
         static_cast<std::uint32_t>(num_shards));
}
inline void cross_shard_end(std::size_t num_shards) noexcept {
  record(EventType::CrossShardEnd, 0,
         static_cast<std::uint32_t>(num_shards));
}
// Parallel combining (core/delegation.hpp): a combiner published `groups`
// delegated groups covering `ops` operations ...
inline void delegate_groups(std::size_t groups, std::size_t ops) noexcept {
  record(EventType::Delegate, static_cast<std::uint8_t>(groups),
         static_cast<std::uint32_t>(ops));
}
// ... and one group of `ops` operations was applied, either by its
// delegate (true) or by the combiner's serial fallback sweep (false).
inline void delegate_apply(bool by_delegate, std::size_t ops) noexcept {
  record(EventType::DelegateApply, by_delegate ? 1 : 0,
         static_cast<std::uint32_t>(ops));
}
// Batched reclamation (mem/pool.hpp): `n` blocks published to pool slot
// `owner`'s MPSC inbox with one CAS ...
inline void remote_retire_flush(std::size_t owner, std::size_t n) noexcept {
  record(EventType::RemoteRetire, static_cast<std::uint8_t>(owner),
         static_cast<std::uint32_t>(n));
}
// ... and `n` blocks drained out of an inbox by its owner.
inline void remote_drain(std::size_t n) noexcept {
  record(EventType::RemoteDrain, 0, static_cast<std::uint32_t>(n));
}

}  // namespace hcf::telemetry
