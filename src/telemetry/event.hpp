// Telemetry event vocabulary (docs/observability.md).
//
// One Event is 16 bytes and packs into two 64-bit words so the ring buffer
// (ring_buffer.hpp) can publish it with two relaxed atomic stores — the
// whole recording path stays lock-free and sanitizer-clean.
#pragma once

#include <cstdint>

namespace hcf::telemetry {

enum class EventType : std::uint8_t {
  None = 0,
  PhaseEnter = 1,      // code = core::Phase the thread is entering
  PhaseExit = 2,       // code = core::Phase; arg = 1 iff the op completed
  HtmCommit = 3,       // code = 1 iff read-only
  HtmAbort = 4,        // code = htm::AbortCode of the failed attempt
  CombineBegin = 5,    // arg = number of ops selected for this session
  CombineEnd = 6,      // arg = ops applied by the session
  SelLockAcquire = 7,  // publication-array selection lock taken
  SelLockRelease = 8,
  OpLatency = 9,       // arg = sampled whole-operation latency (ns)
  ShardRoute = 10,     // code = shard index an operation was routed to
  CrossShardBegin = 11,  // arg = shard count of an all-shard sweep
  CrossShardEnd = 12,    // arg = shard count of an all-shard sweep
  Park = 13,             // thread entered a kernel wait (futex/parking lot)
  Unpark = 14,  // thread left a kernel wait; code = 1 iff spurious,
                // arg = time parked (ns, saturated at u32)
  Delegate = 15,       // code = groups published; arg = ops delegated
  DelegateApply = 16,  // code = 1 iff applied by the delegate (0 = the
                       // combiner's serial fallback); arg = ops in group
  RemoteRetire = 17,   // code = destination pool slot; arg = blocks flushed
                       // to that owner's MPSC inbox in one CAS
  RemoteDrain = 18,    // arg = blocks an owner moved out of its inbox
                       // (free lists + epoch-stamped limbo batch)
};

inline constexpr int kNumEventTypes = 19;

// Event::shard when the recording thread was not executing inside any
// shard of a sharded meta-engine.
inline constexpr std::uint8_t kNoShardId = 0xff;

inline const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::None: return "none";
    case EventType::PhaseEnter: return "phase-enter";
    case EventType::PhaseExit: return "phase-exit";
    case EventType::HtmCommit: return "htm-commit";
    case EventType::HtmAbort: return "htm-abort";
    case EventType::CombineBegin: return "combine-begin";
    case EventType::CombineEnd: return "combine-end";
    case EventType::SelLockAcquire: return "sel-lock-acquire";
    case EventType::SelLockRelease: return "sel-lock-release";
    case EventType::OpLatency: return "op-latency";
    case EventType::ShardRoute: return "shard-route";
    case EventType::CrossShardBegin: return "cross-shard-begin";
    case EventType::CrossShardEnd: return "cross-shard-end";
    case EventType::Park: return "park";
    case EventType::Unpark: return "unpark";
    case EventType::Delegate: return "delegate";
    case EventType::DelegateApply: return "delegate-apply";
    case EventType::RemoteRetire: return "remote-retire";
    case EventType::RemoteDrain: return "remote-drain";
  }
  return "?";
}

struct Event {
  std::uint64_t ts_ns = 0;  // nanoseconds since the telemetry epoch
  EventType type = EventType::None;
  std::uint8_t code = 0;  // phase id / abort code, by type
  std::uint8_t shard = kNoShardId;  // shard the recording thread ran in
  std::uint32_t arg = 0;  // batch size / latency, by type

  // Two-word transport for the ring buffer's seqlock slots. The shard tag
  // rides in word1 bits 16-23 (previously unused padding).
  std::uint64_t word0() const noexcept { return ts_ns; }
  std::uint64_t word1() const noexcept {
    return static_cast<std::uint64_t>(type) |
           (static_cast<std::uint64_t>(code) << 8) |
           (static_cast<std::uint64_t>(shard) << 16) |
           (static_cast<std::uint64_t>(arg) << 32);
  }
  static Event unpack(std::uint64_t w0, std::uint64_t w1) noexcept {
    Event e;
    e.ts_ns = w0;
    e.type = static_cast<EventType>(w1 & 0xff);
    e.code = static_cast<std::uint8_t>((w1 >> 8) & 0xff);
    e.shard = static_cast<std::uint8_t>((w1 >> 16) & 0xff);
    e.arg = static_cast<std::uint32_t>(w1 >> 32);
    return e;
  }
};

}  // namespace hcf::telemetry
