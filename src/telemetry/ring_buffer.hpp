// lint:telemetry-core — the sanctioned lock-free core of the telemetry
// subsystem. This is the ONLY telemetry file allowed to hold raw
// std::atomic state (enforced by tools/lint/hcf_lint.py, rule
// raw-atomic-in-telemetry): everything above it builds on EventRing and
// RuntimeGate instead of sprinkling ad-hoc atomics.
//
// EventRing is a bounded single-writer ring with wait-free snapshot
// readers. Each thread owns one ring (telemetry.hpp indexes them by dense
// thread id), so the writer side needs no synchronization beyond publishing
// stores. Readers (exporters, tests) may run concurrently with the writer;
// per-slot sequence numbers in the style of a seqlock let them detect and
// discard slots that were overwritten mid-copy. When the ring is full the
// writer overwrites the oldest entry — telemetry prefers recent history
// over blocking the hot path — and `pushed()` minus the capacity tells the
// reader how many events were dropped.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/event.hpp"
#include "util/cacheline.hpp"
#include "util/thread_annotations.hpp"

// TSan does not model std::atomic_thread_fence (-Wtsan); snapshot() swaps
// its fence for an acquire reload under that sanitizer (see below).
#if defined(__SANITIZE_THREAD__)
#define HCF_TELEMETRY_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HCF_TELEMETRY_TSAN 1
#endif
#endif

namespace hcf::telemetry {

// Per-thread ring capacity: 4096 events (= 128 KiB of slots per thread).
// Override with -DHCF_TELEMETRY_RING_LOG2=n for longer traces.
#if defined(HCF_TELEMETRY_RING_LOG2)
inline constexpr std::size_t kRingCapacityLog2 = HCF_TELEMETRY_RING_LOG2;
#else
inline constexpr std::size_t kRingCapacityLog2 = 12;
#endif

// The ring is a capability: its writer side (push/clear) REQUIRES it, and
// the only sanctioned way to obtain it is assume_writer() — an assertion
// that the calling thread owns this ring (each ring belongs to one dense
// thread id; telemetry.hpp's record() is the single production call site).
// Thread identity is invisible to TSA, so the assertion is the boundary:
// any new push/clear call that has not vouched for writer ownership fails
// the -Wthread-safety build. Readers (snapshot/pushed/dropped) stay
// capability-free — they are wait-free against a live writer by design.
template <std::size_t CapacityLog2 = kRingCapacityLog2>
class CAPABILITY("telemetry.ring") EventRing {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << CapacityLog2;
  static constexpr std::size_t kMask = kCapacity - 1;

  // Claims writer ownership of this ring for the calling thread. Call
  // sites take on the proof obligation: either the ring is the caller's
  // own per-thread ring, or every writer is quiesced (reset paths).
  void assume_writer() const noexcept ASSERT_CAPABILITY(this) {}

  // Single-writer append. Publishes via the slot's sequence word: readers
  // accept a slot only when they observe the same even "complete at index
  // h" value before and after copying the payload.
  void push(const Event& e) noexcept REQUIRES(this) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & kMask];
    s.seq.store(seq_busy(h), std::memory_order_relaxed);
    // The payload stores are relaxed atomics: a concurrent reader may load
    // torn halves, but the surrounding seq protocol makes it discard them.
    s.w0.store(e.word0(), std::memory_order_relaxed);
    s.w1.store(e.word1(), std::memory_order_relaxed);
    s.seq.store(seq_done(h), std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  // Total pushes ever; min(pushed, kCapacity) entries are retrievable.
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  std::uint64_t dropped() const noexcept {
    const std::uint64_t h = pushed();
    return h > kCapacity ? h - kCapacity : 0;
  }

  // Copies the retained events, oldest first, into `out`. Entries the
  // writer overwrites while we copy are skipped (their seq moved on), so
  // the result is always a valid — possibly slightly shortened — suffix of
  // the event history. Wait-free; safe concurrent with push().
  void snapshot(std::vector<Event>& out) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t begin = h > kCapacity ? h - kCapacity : 0;
    for (std::uint64_t i = begin; i < h; ++i) {
      const Slot& s = slots_[i & kMask];
      const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 != seq_done(i)) continue;  // overwritten or in flight
      const std::uint64_t w0 = s.w0.load(std::memory_order_relaxed);
      const std::uint64_t w1 = s.w1.load(std::memory_order_relaxed);
#if defined(HCF_TELEMETRY_TSAN)
      // Every slot word is atomic, so the fence is only ordering the seq
      // recheck after the payload loads; an acquire reload is equivalent in
      // practice and keeps the TSan build free of -Wtsan noise.
      if (s.seq.load(std::memory_order_acquire) != seq_done(i)) continue;
#else
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != seq_done(i)) continue;
#endif
      out.push_back(Event::unpack(w0, w1));
    }
  }

  void clear() noexcept REQUIRES(this) {
    // Writer-side reset (tests / between measurement intervals; callers
    // must quiesce the owning thread first).
    for (auto& s : slots_) s.seq.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> w0{0};
    std::atomic<std::uint64_t> w1{0};
  };

  // Slot 0 of an empty ring must not look like a completed index-0 entry,
  // so "done at index h" is encoded as 2h+2 (never 0) and "busy" as odd.
  static constexpr std::uint64_t seq_done(std::uint64_t h) noexcept {
    return 2 * h + 2;
  }
  static constexpr std::uint64_t seq_busy(std::uint64_t h) noexcept {
    return 2 * h + 1;
  }

  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  alignas(util::kCacheLineSize) std::array<Slot, kCapacity> slots_{};
};

// The runtime on/off gate for event recording. A single relaxed load on
// the hot path; part of the sanctioned core so the rest of the telemetry
// layer stays free of raw atomics.
class RuntimeGate {
 public:
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
};

}  // namespace hcf::telemetry
