#!/usr/bin/env python3
"""Diff two hcf-bench-v1 result sets with noise-aware thresholds.

    tools/perflab/compare.py BASELINE CURRENT [--threshold=0.25] [--min-ops=2000]

BASELINE and CURRENT are each either a single ``BENCH_*.json`` file or a
directory containing several. Rows are matched on the key
(bench, workload, engine, threads, cs_work); throughput (``ops_per_sec``)
is the compared metric.

A row is a *regression* when current throughput falls below
``baseline * (1 - threshold)``. Rows where either side completed fewer
than ``--min-ops`` operations are skipped as noise (short CI windows on
shared machines produce wild ratios on tiny samples). Rows present on
only one side are reported but never fail the comparison — sweeps grow.

Exit status: 0 clean (improvements are fine), 1 at least one regression,
2 usage/schema errors.
"""

import argparse
import glob
import json
import os
import sys

SCHEMA = "hcf-bench-v1"


def load_result_files(path):
    """Yield parsed JSON documents from a file or a directory of BENCH_*.json."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
        if not files:
            raise ValueError(f"no BENCH_*.json files in {path}")
    elif os.path.isfile(path):
        files = [path]
    else:
        raise ValueError(f"no such file or directory: {path}")
    for name in files:
        with open(name, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("schema") != SCHEMA:
            raise ValueError(f"{name}: unexpected schema {doc.get('schema')!r}")
        yield name, doc


def index_rows(path):
    """Map (bench, workload, engine, threads, cs_work) -> row."""
    rows = {}
    for name, doc in load_result_files(path):
        bench = doc.get("bench", "?")
        for row in doc.get("results", []):
            try:
                key = (bench, row["workload"], row["engine"],
                       int(row["threads"]), int(row["cs_work"]))
                float(row["ops_per_sec"])
                int(row["ops"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{name}: malformed row ({exc})")
            rows[key] = row
    return rows


def fmt_key(key):
    bench, workload, engine, threads, cs_work = key
    return f"{bench}/{workload}/{engine} t={threads} w={cs_work}"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline file or directory")
    parser.add_argument("current", help="current file or directory")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional throughput drop (default 0.25)")
    parser.add_argument("--min-ops", type=int, default=2000,
                        help="skip rows where either side did fewer ops")
    args = parser.parse_args(argv)

    if not (0.0 < args.threshold < 1.0):
        print("error: --threshold must be in (0, 1)", file=sys.stderr)
        return 2

    try:
        base = index_rows(args.baseline)
        curr = index_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    regressions = []
    compared = skipped = 0
    for key in sorted(base):
        if key not in curr:
            print(f"[compare] only-in-baseline: {fmt_key(key)}")
            continue
        b, c = base[key], curr[key]
        if int(b["ops"]) < args.min_ops or int(c["ops"]) < args.min_ops:
            skipped += 1
            continue
        compared += 1
        b_tput = float(b["ops_per_sec"])
        c_tput = float(c["ops_per_sec"])
        if b_tput <= 0.0:
            continue
        ratio = c_tput / b_tput
        if ratio < 1.0 - args.threshold:
            regressions.append((key, b_tput, c_tput, ratio))
    for key in sorted(set(curr) - set(base)):
        print(f"[compare] only-in-current: {fmt_key(key)}")

    for key, b_tput, c_tput, ratio in regressions:
        print(f"[compare] REGRESSION {fmt_key(key)}: "
              f"{b_tput:.0f} -> {c_tput:.0f} ops/s ({100.0 * (ratio - 1.0):+.1f}%)")
    print(f"[compare] compared {compared} rows, skipped {skipped} below "
          f"--min-ops={args.min_ops}, threshold {100.0 * args.threshold:.0f}%: "
          f"{len(regressions)} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
