#!/usr/bin/env python3
"""Self-test for compare.py against the checked-in fixtures.

Exercises the three exit-code contracts:
  0 — ok/improved result sets pass,
  1 — a >threshold throughput drop is flagged as a regression,
  2 — schema mismatches and bad usage are reported as errors,
plus the --min-ops noise floor (the tiny "noisy" row regresses by 80%
in the regressed fixture but must be skipped, so exactly one regression
is reported there).
"""

import io
import os
import sys
from contextlib import redirect_stdout, redirect_stderr

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import compare  # noqa: E402

FIXTURES = os.path.join(HERE, "fixtures")
BASELINE = os.path.join(FIXTURES, "baseline")
REGRESSED = os.path.join(FIXTURES, "regressed")
OK = os.path.join(FIXTURES, "ok")
BAD_SCHEMA = os.path.join(FIXTURES, "bad_schema")

failures = []


def check(name, argv, want_exit, want_stdout_contains=()):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        got = compare.main(argv)
    text = out.getvalue() + err.getvalue()
    if got != want_exit:
        failures.append(f"{name}: exit {got}, want {want_exit}\n{text}")
        return
    for needle in want_stdout_contains:
        if needle not in text:
            failures.append(f"{name}: output missing {needle!r}\n{text}")


# Clean comparison: improvements and a new row, no regressions.
check("ok-vs-baseline", [BASELINE, OK], 0,
      ["0 regression(s)", "only-in-current"])

# Identity comparison is trivially clean.
check("identity", [BASELINE, BASELINE], 0, ["0 regression(s)"])

# The regressed fixture drops HCF t=1 by 60% (flagged) and the noisy row
# by 80% (skipped: under --min-ops); TLE drops only ~2% (within threshold).
check("regression-flagged", [BASELINE, REGRESSED], 1,
      ["REGRESSION", "1 regression(s)", "demo/40f/30i/30r/HCF t=1"])

# A tighter threshold also catches the small TLE drop.
check("tight-threshold", [BASELINE, REGRESSED, "--threshold=0.01"], 1,
      ["2 regression(s)"])

# Lowering the noise floor exposes the noisy row too.
check("min-ops-floor", [BASELINE, REGRESSED, "--min-ops=1"], 1,
      ["2 regression(s)", "demo/noisy/HCF"])

# Schema mismatch and missing paths are usage errors, not regressions.
check("bad-schema", [BASELINE, BAD_SCHEMA], 2, ["unexpected schema"])
check("missing-path", [BASELINE, os.path.join(FIXTURES, "nope")], 2, [])
check("bad-threshold", [BASELINE, OK, "--threshold=2.0"], 2, [])

if failures:
    print("perflab selftest FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  - {f}", file=sys.stderr)
    sys.exit(1)
print(f"perflab selftest OK ({8} checks)")
