#!/usr/bin/env python3
"""Orchestrate benchmark sweeps into machine-readable result sets.

Runs the repo's bench binaries with --json and collects one
``BENCH_<name>.json`` (hcf-bench-v1 schema) per binary, by default at the
repository root so ``compare.py`` and CI can pick them up by glob.

Typical uses:

    tools/perflab/run.py --quick            # CI perf smoke (~1 min)
    tools/perflab/run.py                    # full paper sweep (slow)
    tools/perflab/run.py --only=fig2_hash_table --threads=1,2,4

Exit status: 0 when every selected bench produced schema-valid JSON,
1 when any bench failed or emitted invalid output, 2 on usage errors.
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SCHEMA = "hcf-bench-v1"

# Every table/figure binary speaks the common BenchOptions flags; the
# google-benchmark substrate binary only understands --quick/--json.
TABLE_BENCHES = [
    "fig2_hash_table",
    "fig3_phase_breakdown",
    "fig4_combining_stats",
    "fig5_avl_tree",
    "fig6_sharded",
    "fig7_oversub",
    "fig8_parallel_combine",
    "fig9_reclaim",
    "pq_motivation",
    "deque_two_ends",
    "list_combining",
    "stack_elimination",
    "ablation_hcf_variants",
    "ablation_trials",
    "ablation_adaptive",
]
SUBSTRATE_BENCHES = ["micro_substrate", "micro_engine"]

# The quick profile keeps total runtime around a minute on one core: a
# subset of benches, two thread counts, and short measurement windows.
QUICK_BENCHES = ["fig2_hash_table", "fig4_combining_stats", "fig6_sharded",
                 "fig7_oversub", "fig8_parallel_combine", "fig9_reclaim",
                 "micro_substrate", "micro_engine"]
QUICK_ARGS = ["--threads=1,2", "--duration-ms=50", "--warmup-ms=10"]
QUICK_WORKLOAD = {"fig2_hash_table": "40f", "fig6_sharded": "40f",
                  "fig7_oversub": "paper", "fig8_parallel_combine": "paper",
                  "fig9_reclaim": "retire-micro"}


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short CI-smoke sweep (subset of benches)")
    parser.add_argument("--only", default="",
                        help="comma-separated bench names to run")
    parser.add_argument("--bench-dir", default=os.path.join(REPO_ROOT, "build", "bench"),
                        help="directory containing the bench binaries")
    parser.add_argument("--out-dir", default=REPO_ROOT,
                        help="where BENCH_<name>.json files are written")
    parser.add_argument("--threads", default="",
                        help="thread counts forwarded to the benches")
    parser.add_argument("--duration-ms", default="",
                        help="measurement window forwarded to the benches")
    return parser.parse_args(argv)


def validate(path):
    """Minimal schema check on a produced result file."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA:
        raise ValueError(f"unexpected schema: {data.get('schema')!r}")
    results = data.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("empty results array")
    for row in results:
        for key in ("workload", "engine", "threads", "cs_work",
                    "ops", "duration_s", "ops_per_sec"):
            if key not in row:
                raise ValueError(f"row missing key {key!r}")
    return len(results)


def main(argv=None):
    args = parse_args(argv)

    benches = TABLE_BENCHES + SUBSTRATE_BENCHES
    if args.quick:
        benches = QUICK_BENCHES
    if args.only:
        selected = [b.strip() for b in args.only.split(",") if b.strip()]
        unknown = [b for b in selected if b not in TABLE_BENCHES + SUBSTRATE_BENCHES]
        if unknown:
            print(f"error: unknown bench(es): {', '.join(unknown)}", file=sys.stderr)
            return 2
        benches = selected

    if not os.path.isdir(args.bench_dir):
        print(f"error: bench dir not found: {args.bench_dir} (build first)",
              file=sys.stderr)
        return 2
    os.makedirs(args.out_dir, exist_ok=True)

    failures = 0
    for bench in benches:
        binary = os.path.join(args.bench_dir, bench)
        if not os.path.isfile(binary):
            print(f"[perflab] SKIP {bench}: binary not built", file=sys.stderr)
            failures += 1
            continue
        out_path = os.path.join(args.out_dir, f"BENCH_{bench}.json")
        cmd = [binary, f"--json={out_path}"]
        if bench in SUBSTRATE_BENCHES:
            if args.quick:
                cmd.append("--quick")
        else:
            if args.quick:
                cmd.extend(QUICK_ARGS)
                workload = QUICK_WORKLOAD.get(bench)
                if workload:
                    cmd.append(f"--workload={workload}")
            if args.threads:
                cmd.append(f"--threads={args.threads}")
            if args.duration_ms:
                cmd.append(f"--duration-ms={args.duration_ms}")
        print(f"[perflab] RUN  {bench}: {' '.join(cmd[1:])}", flush=True)
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"[perflab] FAIL {bench}: exit {proc.returncode}", file=sys.stderr)
            failures += 1
            continue
        try:
            rows = validate(out_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"[perflab] FAIL {bench}: invalid output ({exc})", file=sys.stderr)
            failures += 1
            continue
        print(f"[perflab] OK   {bench}: {rows} rows -> {out_path}", flush=True)

    if failures:
        print(f"[perflab] {failures} bench(es) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
