#!/usr/bin/env python3
"""HCF protocol linter: mechanical enforcement of the simulated-HTM usage
restrictions that src/sim_htm/htm.hpp documents.

The simulator gives opacity and strong isolation only when callers follow
its protocol; breaking it does not fail fast, it corrupts data under
contention. This linter walks C++ sources and enforces the repo invariants
lexically (regex + brace matching on comment/string-stripped text — no
compiler dependency, by design):

  pragma-once            every header starts with #pragma once
  include-parent         no '..' segments in quoted includes (project
                         includes are root-relative)
  strong-outside-sim-htm htm::strong_* may only be called inside
                         src/sim_htm/ (everyone else goes through TxCell)
  raw-atomic-in-core     no raw std::atomic state in src/core/ — engine
                         shared state must be a TxCell so mutations doom
                         subscribed transactions
  tx-blocking-call       no blocking/waiting calls inside an htm::attempt
                         transaction body
  tx-catch-all           no catch (...) without rethrow inside a
                         transaction body
  tx-strong-op           no strong mutations (TxCell store/cas/fetch_add,
                         htm::strong_*) inside a transaction body
  tx-subscribe-first     in src/core/ engines, a transaction body's first
                         statement must subscribe to the elided lock
  raw-atomic-in-telemetry no raw std::atomic state in src/telemetry/
                         outside the sanctioned ring-buffer core (files
                         carrying a `lint:telemetry-core` marker); the
                         layer builds on EventRing/RuntimeGate instead
  tx-telemetry-call      no telemetry:: calls inside an htm::attempt
                         transaction body — an event record is a
                         non-transactional side effect that survives
                         aborts and replays on retry; hooks go around
                         attempts, never inside
  seq-cst-justification  every memory_order_seq_cst in src/sim_htm/ must
                         carry a '// seq_cst:' justification comment on
                         the same line or in the comment block directly
                         above — the substrate runs on acquire/release,
                         and each seq_cst is a proof obligation
  phase-telemetry-pairing
                         in src/core/, every telemetry::phase_enter must
                         be lexically paired with a later
                         telemetry::phase_exit whose first argument is
                         the same phase expression, with no `return`
                         between them — an early return inside the pair
                         leaves a dangling begin in the trace and the
                         Chrome exporter reports it as an orphan
  scan-requires-selection-lock
                         publication-array scans (.for_each_announced /
                         .collect_announced calls) in src/ and tests/ must
                         be visibly serialized: either a '// scan-locked:'
                         comment (same line or comment block directly
                         above) naming the lock that protects the scan, or
                         a selection-lock acquisition (selection_lock()
                         .lock()/.try_lock() or a LockGuard) within the 10
                         preceding lines — an unlocked scan races
                         clear_slot against concurrent combiners
  tsa-escape-justification
                         every NO_THREAD_SAFETY_ANALYSIS escape from the
                         Clang thread-safety analysis must carry a
                         '// tsa:' justification comment on the same line
                         or in the comment block directly above; the
                         macro's own preprocessor definition is exempt
  cross-shard-lock-order a loop that acquires shard locks (a lock()/
                         try_lock() statement in a loop whose header or
                         body mentions shards) must walk the indices in
                         ascending order: a classic for-loop needs ++/+=
                         in its header and no --/-=, a range-for is fine
                         (container order is index order). The global
                         ascending acquisition order is what makes the
                         cross-shard whole-structure path deadlock-free
                         (DESIGN.md §11); release order is unconstrained
                         because unlock statements do not match
  delegated-apply-no-selection-lock
                         the body of an apply_delegated* function must
                         never touch the selection lock: the delegating
                         combiner released it before publishing groups,
                         and a claim winner re-entering selection while
                         the combiner parks on the group's done word
                         inverts the wait order (DESIGN.md §13)
  node-alloc-via-facade  no raw new/delete expressions in src/ds/: node
                         memory must flow through the mem:: facade
                         (htm::make / htm::retire on operation paths,
                         mem::alloc / mem::dealloc in teardown) so every
                         block carries the ownership header that batched
                         cross-thread retirement keys on; a raw delete of
                         a pooled block is heap corruption. Deliberate
                         escapes carry // lint:allow(node-alloc-via-facade)
  lint-directive         a lint:allow / lint:allow-file directive names a
                         rule this linter does not have (typo'd
                         suppressions otherwise fail silently open)

Suppressions (for deliberate violations, e.g. negative tests):
  // lint:allow(rule-id)        — suppress rule-id on this line
  // lint:allow-file(rule-id)   — suppress rule-id anywhere in this file
                                  (position-independent: the directive may
                                  sit above or below the violation)
  // lint:allow(rule-a, rule-b) — both directives accept a comma-separated
                                  rule list
  // lint:zone(core)            — override the path-derived zone (fixtures)
  // lint:telemetry-core        — marks the telemetry atomic core (exempts
                                  the file from raw-atomic-in-telemetry)

Diagnostics are 'file:line: [rule-id] message' (or a JSON array with
--format=json); exit status is non-zero iff any diagnostic was emitted.
Lexical limits: the transaction-body rules see only the text of the lambda
itself, not functions it calls — tools/lint/hcf_semalint.py covers the
cross-function half of these invariants when libclang is available.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

# Rule registry: id -> one-line description (--list-rules; directive
# validation). The module docstring above carries the long-form rationale.
RULES: dict[str, str] = {
    "pragma-once": "headers must start with #pragma once",
    "include-parent": "no '..' segments in quoted includes",
    "strong-outside-sim-htm":
        "htm::strong_* calls are confined to src/sim_htm/",
    "raw-atomic-in-core":
        "no raw std::atomic engine state; shared words go through TxCell",
    "raw-atomic-in-telemetry":
        "telemetry atomics are confined to the lint:telemetry-core file",
    "tx-blocking-call": "no blocking/waiting calls in a transaction body",
    "tx-catch-all": "no catch (...) without rethrow in a transaction body",
    "tx-strong-op": "no strong mutations in a transaction body",
    "tx-subscribe-first":
        "engine transaction bodies subscribe to the lock first",
    "tx-telemetry-call": "no telemetry:: calls in a transaction body",
    "seq-cst-justification":
        "memory_order_seq_cst in src/sim_htm/ needs a '// seq_cst:' comment",
    "phase-telemetry-pairing":
        "phase_enter needs a matching phase_exit with no return between",
    "scan-requires-selection-lock":
        "publication-array scans need visible selection-lock serialization",
    "tsa-escape-justification":
        "NO_THREAD_SAFETY_ANALYSIS needs an adjacent '// tsa:' comment",
    "cross-shard-lock-order":
        "all-shard lock acquisition loops must walk shard indices ascending",
    "delegated-apply-no-selection-lock":
        "apply_delegated* bodies must never touch the selection lock",
    "node-alloc-via-facade":
        "no raw new/delete in src/ds/; node memory goes through mem::alloc"
        "/mem::dealloc/mem::retire (htm::make/htm::retire on hot paths)",
    "lint-directive":
        "suppression directives must name rules that actually exist",
}

HEADER_EXTS = {".hpp", ".h", ".hh", ".hxx"}
SOURCE_EXTS = HEADER_EXTS | {".cpp", ".cc", ".cxx"}

# Directive arguments are captured whole and split on commas below, so
# `lint:allow(rule-a, rule-b)` suppresses both rules. (A char-class-only
# capture used to stop at the first comma and silently ignore the rest.)
ALLOW_LINE_RE = re.compile(r"lint:allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"lint:allow-file\(([^)]*)\)")
ZONE_RE = re.compile(
    r"lint:zone\((sim_htm|core|telemetry|ds|src|tests|other)\)")
TELEMETRY_CORE_RE = re.compile(r"lint:telemetry-core")

STRONG_CALL_RE = re.compile(
    r"\b(?:htm::)?(strong_store|strong_cas|strong_fetch_add|strong_load)\s*\(")
RAW_ATOMIC_RE = re.compile(r"\bstd::atomic(?:_ref)?\s*<")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
INCLUDE_PARENT_RE = re.compile(r'^\s*#\s*include\s+"[^"]*\.\./')
ATTEMPT_RE = re.compile(r"\bhtm::attempt\s*\(")

# Calls that block or wait; none may appear inside a transaction body.
# A transaction that blocks can deadlock against the quiescence gate
# (wait_writeback_drain spins while our commit is pending) and, on real
# HTM, would simply abort.
BLOCKING_RES = [
    (re.compile(r"(?:\.|->)lock\s*\("), "lock acquisition"),
    (re.compile(r"\btry_lock\s*\("), "lock acquisition"),
    (re.compile(r"\bLockGuard\b"), "lock guard"),
    (re.compile(r"\bstd::(?:mutex|shared_mutex|condition_variable)\b"),
     "OS synchronization primitive"),
    (re.compile(r"\bwait_done\s*\("), "waiting on another operation"),
    (re.compile(r"\bwait_until_free\s*\("), "waiting on a lock"),
    (re.compile(r"\bwait_writeback_drain\s*\("), "waiting on quiescence"),
    (re.compile(r"(?:\.|->)join\s*\("), "thread join"),
    (re.compile(r"\bsleep(?:_for|_until)?\s*\("), "sleeping"),
    (re.compile(r"\bstd::this_thread::yield\s*\("), "yielding"),
    (re.compile(r"\barrive_and_wait\s*\("), "barrier wait"),
    # Parking tier (util/parking.hpp): a parked transaction deadlocks the
    # quiescence gate; on real HTM the deschedule aborts it. Wakes are
    # syscalls too — any futex traffic inside a transaction is a protocol
    # break, sleeping or not.
    (re.compile(r"\bfutex_wait\w*\s*\("), "futex wait"),
    (re.compile(r"\bfutex_wake\w*\s*\("), "futex wake syscall"),
    (re.compile(r"(?:\butil::|\.|->)park\s*\("), "futex parking"),
    (re.compile(r"\bpark_(?:if|on_epoch)\s*\("), "futex parking"),
    (re.compile(r"\bwake_epoch_waiters\s*\("), "epoch wake syscall"),
]

# Strong (non-transactional) mutations: dooming operations that must never
# run from inside a transaction (protocol_check.hpp traps these at runtime;
# this is the static half of the same check). `.store(`/.cas(/.fetch_add(
# are the TxCell mutator spellings.
TX_STRONG_RES = [
    (re.compile(r"\bstrong_(?:store|cas|fetch_add)\s*\("), "htm::strong_*"),
    (re.compile(r"(?:\.|->)store\s*\("), "TxCell::store"),
    (re.compile(r"(?:\.|->)store_plain\s*\("), "TxCell::store_plain"),
    (re.compile(r"(?:\.|->)cas\s*\("), "TxCell::cas"),
    (re.compile(r"(?:\.|->)fetch_add\s*\("), "TxCell::fetch_add"),
]

SUBSCRIBE_RE = re.compile(r"\bsubscribe\s*\(\s*\)")

SEQ_CST_RE = re.compile(r"\bmemory_order_seq_cst\b")
SEQ_CST_JUSTIFICATION_RE = re.compile(r"//\s*seq_cst:")

# Member calls only (pa.for_each_announced(...)): the unqualified uses
# inside PublicationArray itself document their precondition in place.
SCAN_CALL_RE = re.compile(
    r"(?:\.|->)\s*(?:for_each_announced|collect_announced)\s*\(")
SCAN_LOCKED_RE = re.compile(r"//\s*scan-locked:")
SCAN_LOCK_ACQ_RE = re.compile(
    r"selection_lock\s*\(\s*\)\s*\.\s*(?:try_)?lock\s*\(|\bLockGuard\b")
SCAN_LOCK_WINDOW = 10  # raw lines above the call searched for an acquisition
COMMENT_LINE_RE = re.compile(r"^\s*//")

TELEMETRY_CALL_RE = re.compile(r"\btelemetry::\w+\s*\(")

TSA_ESCAPE_RE = re.compile(r"\bNO_THREAD_SAFETY_ANALYSIS\b")
TSA_JUSTIFICATION_RE = re.compile(r"//\s*tsa:")

# Delegated-apply purity: the definition matcher finds `apply_delegated*(`
# followed by a brace-opened body (a trailing `;` before the `{` means a
# declaration or call site, which is exempt — calls legitimately appear
# near selection code in the combiner).
DELEGATED_APPLY_DEF_RE = re.compile(r"\bapply_delegated\w*\s*\(")
SELECTION_LOCK_RE = re.compile(r"\bselection_lock\b")

PHASE_ENTER_RE = re.compile(r"\btelemetry::phase_enter\s*\(")
PHASE_EXIT_RE = re.compile(r"\btelemetry::phase_exit\s*\(")
RETURN_RE = re.compile(r"\breturn\b")

# Statement-anchored lock acquisition: `x.lock();` / `x->try_lock();`.
# The trailing `;` matters — `shards_[i]->lock().unlock();` contains the
# accessor spelling `->lock(` but is a release, not an acquisition, and
# must not match. The `.`/`->` prefix keeps `unlock()` itself out.
# Any raw allocation expression in src/ds/. Operator names (`operator new`)
# and the facade's own placement new live in mem/, not ds/, so a keyword
# match is exact here once `= delete` (deleted special members — the only
# non-expression use of either keyword) is filtered out in the check;
# deliberate escapes carry lint:allow.
NEW_DELETE_RE = re.compile(r"\b(new|delete)\b")

FOR_LOOP_RE = re.compile(r"\bfor\s*\(")
SHARD_LOCK_ACQ_RE = re.compile(r"(?:\.|->)\s*(?:try_)?lock\s*\(\s*\)\s*;")
SHARD_WORD_RE = re.compile(r"\bshard", re.IGNORECASE)
ASCENDING_STEP_RE = re.compile(r"\+\+|\+=")
DESCENDING_STEP_RE = re.compile(r"--|-=")


class Diagnostic:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving newlines and
    column positions so offsets keep mapping to file lines."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                mode = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                mode = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def zone_for(path: str, raw_text: str) -> str:
    """Classify a file into a rule-scoping zone from its path, with a
    lint:zone(...) override for fixture files."""
    m = ZONE_RE.search(raw_text)
    if m:
        return m.group(1)
    norm = path.replace(os.sep, "/")
    if "/src/sim_htm/" in norm or norm.startswith("src/sim_htm/"):
        return "sim_htm"
    if "/src/core/" in norm or norm.startswith("src/core/"):
        return "core"
    if "/src/telemetry/" in norm or norm.startswith("src/telemetry/"):
        return "telemetry"
    if "/src/ds/" in norm or norm.startswith("src/ds/"):
        return "ds"
    if "/src/" in norm or norm.startswith("src/"):
        return "src"
    if "/tests/" in norm or norm.startswith("tests/"):
        return "tests"
    return "other"


class FileLinter:
    def __init__(self, path: str, raw_text: str):
        self.path = path
        self.raw = raw_text
        self.raw_lines = raw_text.splitlines()
        self.stripped = strip_comments_and_strings(raw_text)
        self.lines = self.stripped.splitlines()
        self.zone = zone_for(path, raw_text)
        self.diags: list[Diagnostic] = []
        # Directive pre-pass: both directive kinds are collected for the
        # whole file before any rule runs, so lint:allow-file works whether
        # it sits above or below the violation it suppresses. Rule names
        # are validated against the registry — a typo'd suppression must
        # not fail silently open.
        self.file_allows: set[str] = set()
        self.line_allows: dict[int, set[str]] = {}
        for idx, line in enumerate(self.raw_lines, start=1):
            for m in ALLOW_FILE_RE.finditer(line):
                self.file_allows.update(self.parse_directive(idx, m.group(1)))
            line_rules: set[str] = set()
            for m in ALLOW_LINE_RE.finditer(line):
                line_rules.update(self.parse_directive(idx, m.group(1)))
            if line_rules:
                self.line_allows[idx] = line_rules

    def parse_directive(self, line: int, blob: str) -> set[str]:
        """Split a directive's argument list, reporting unknown rules."""
        rules = set()
        for name in (r.strip() for r in blob.split(",")):
            if not name:
                continue
            # sema-* rules belong to tools/lint/hcf_semalint.py, which
            # honors the same directive grammar; they are valid names
            # here, they just never suppress a lexical rule.
            if name.startswith("sema-"):
                continue
            if name not in RULES:
                self.report(line, "lint-directive",
                            f"suppression names unknown rule '{name}'")
                continue
            rules.add(name)
        return rules

    def report(self, line: int, rule: str, message: str) -> None:
        if rule in self.file_allows:
            return
        if rule in self.line_allows.get(line, set()):
            return
        self.diags.append(Diagnostic(self.path, line, rule, message))

    # -- offset helpers ----------------------------------------------------

    def line_of(self, offset: int) -> int:
        return self.stripped.count("\n", 0, offset) + 1

    def match_brace(self, open_idx: int) -> int:
        """Index of the '}' matching the '{' at open_idx, or -1."""
        depth = 0
        for i in range(open_idx, len(self.stripped)):
            c = self.stripped[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    return i
        return -1

    # -- rules -------------------------------------------------------------

    def check_pragma_once(self) -> None:
        _, ext = os.path.splitext(self.path)
        if ext not in HEADER_EXTS:
            return
        for line in self.raw_lines:
            if PRAGMA_ONCE_RE.match(line):
                return
        self.report(1, "pragma-once", "header is missing '#pragma once'")

    def check_includes(self) -> None:
        for idx, line in enumerate(self.raw_lines, start=1):
            if INCLUDE_PARENT_RE.match(line):
                self.report(idx, "include-parent",
                            "include path uses '..'; project includes are "
                            "root-relative (see CMake include_directories)")

    def check_strong_outside_sim_htm(self) -> None:
        if self.zone not in ("src", "core", "ds"):
            return
        for m in STRONG_CALL_RE.finditer(self.stripped):
            self.report(
                self.line_of(m.start()), "strong-outside-sim-htm",
                f"direct call to htm::{m.group(1)}; engine-shared words "
                "must be TxCell so strong mutations doom subscribed "
                "transactions")

    def check_raw_atomic_in_core(self) -> None:
        if self.zone != "core":
            return
        for m in RAW_ATOMIC_RE.finditer(self.stripped):
            self.report(
                self.line_of(m.start()), "raw-atomic-in-core",
                "raw std::atomic in an engine; shared engine state must go "
                "through TxCell (or carry a lint:allow with justification "
                "if it is never read transactionally)")

    def check_raw_atomic_in_telemetry(self) -> None:
        if self.zone != "telemetry":
            return
        if TELEMETRY_CORE_RE.search(self.raw):
            return  # the sanctioned lock-free core (ring_buffer.hpp)
        for m in RAW_ATOMIC_RE.finditer(self.stripped):
            self.report(
                self.line_of(m.start()), "raw-atomic-in-telemetry",
                "raw std::atomic in the telemetry layer; only the "
                "lint:telemetry-core ring-buffer file may hold atomic "
                "state — build on EventRing/RuntimeGate instead")

    def check_seq_cst_justification(self) -> None:
        if self.zone != "sim_htm":
            return
        for m in SEQ_CST_RE.finditer(self.stripped):
            line = self.line_of(m.start())
            if self.seq_cst_justified(line):
                continue
            self.report(
                line, "seq-cst-justification",
                "memory_order_seq_cst without an adjacent '// seq_cst:' "
                "justification comment; the substrate's ordering diet "
                "requires each remaining seq_cst to document the proof "
                "obligation it discharges (DESIGN.md, Substrate "
                "performance)")

    def seq_cst_justified(self, line: int) -> bool:
        """True if raw line `line` (1-based) carries a '// seq_cst:' marker
        or sits directly under a comment block containing one."""
        return self.marker_adjacent(line, SEQ_CST_JUSTIFICATION_RE)

    def marker_adjacent(self, line: int, rx) -> bool:
        """True if raw line `line` (1-based) matches `rx` or sits directly
        under a comment block with a matching line."""
        if rx.search(self.raw_lines[line - 1]):
            return True
        i = line - 1  # 0-based index of the line above
        while i >= 1 and COMMENT_LINE_RE.match(self.raw_lines[i - 1]):
            if rx.search(self.raw_lines[i - 1]):
                return True
            i -= 1
        return False

    def check_tsa_escape_justification(self) -> None:
        for m in TSA_ESCAPE_RE.finditer(self.stripped):
            line = self.line_of(m.start())
            # The macro's own preprocessor plumbing (definition in
            # thread_annotations.hpp, any conditional redefinitions) is
            # not an escape site.
            if self.raw_lines[line - 1].lstrip().startswith("#"):
                continue
            if self.marker_adjacent(line, TSA_JUSTIFICATION_RE):
                continue
            self.report(
                line, "tsa-escape-justification",
                "NO_THREAD_SAFETY_ANALYSIS without an adjacent '// tsa:' "
                "justification comment; every escape from the clang "
                "thread-safety analysis is a proof obligation and must "
                "document why the capability model cannot express this "
                "site (docs/static_analysis.md)")

    def check_scan_requires_selection_lock(self) -> None:
        if self.zone not in ("core", "src", "ds", "tests"):
            return
        for m in SCAN_CALL_RE.finditer(self.stripped):
            line = self.line_of(m.start())
            if self.marker_adjacent(line, SCAN_LOCKED_RE):
                continue
            lo = max(0, line - 1 - SCAN_LOCK_WINDOW)
            window = self.raw_lines[lo:line - 1]
            if any(SCAN_LOCK_ACQ_RE.search(l) for l in window):
                continue
            self.report(
                line, "scan-requires-selection-lock",
                "publication-array scan with no visible serialization; "
                "acquire the selection lock nearby or add a "
                "'// scan-locked:' comment naming the lock that makes "
                "this scan safe (unlocked scans race clear_slot against "
                "concurrent combiners)")

    def match_paren(self, open_idx: int) -> int:
        """Index of the ')' matching the '(' at open_idx, or -1. Tracks all
        bracket kinds so lambdas/subscripts inside the parens don't
        unbalance the walk."""
        depth = 0
        for i in range(open_idx, len(self.stripped)):
            c = self.stripped[i]
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
                if depth == 0:
                    return i
        return -1

    def check_cross_shard_lock_order(self) -> None:
        if self.zone not in ("core", "src", "ds", "tests"):
            return
        for m in FOR_LOOP_RE.finditer(self.stripped):
            open_idx = m.end() - 1
            close_idx = self.match_paren(open_idx)
            if close_idx < 0:
                continue
            header = self.stripped[open_idx + 1:close_idx]
            # Loop body: a braced block or a single statement.
            i = close_idx + 1
            while i < len(self.stripped) and self.stripped[i].isspace():
                i += 1
            if i >= len(self.stripped):
                continue
            if self.stripped[i] == "{":
                end = self.match_brace(i)
                body = self.stripped[i:end + 1] if end >= 0 else ""
            else:
                semi = self.stripped.find(";", i)
                body = self.stripped[i:semi + 1] if semi >= 0 else ""
            if not SHARD_LOCK_ACQ_RE.search(body):
                continue
            if not (SHARD_WORD_RE.search(header)
                    or SHARD_WORD_RE.search(body)):
                continue
            # Range-for (no clause separators) walks container order, which
            # for a shard vector IS index order.
            depth = 0
            semis = 0
            for c in header:
                if c in "([{":
                    depth += 1
                elif c in ")]}":
                    depth -= 1
                elif c == ";" and depth == 0:
                    semis += 1
            if semis < 2:
                continue
            if (DESCENDING_STEP_RE.search(header)
                    or not ASCENDING_STEP_RE.search(header)):
                self.report(
                    self.line_of(m.start()), "cross-shard-lock-order",
                    "shard-lock acquisition loop does not walk shard "
                    "indices in ascending order; the cross-shard "
                    "whole-structure path is deadlock-free only because "
                    "every all-shard acquisition uses the same global "
                    "ascending index order (DESIGN.md §11) — iterate "
                    "`for (i = 0; i < n; ++i)` or range-for over the "
                    "shard container")

    def check_delegated_apply_no_selection_lock(self) -> None:
        if self.zone not in ("core", "src", "ds", "tests"):
            return
        for m in DELEGATED_APPLY_DEF_RE.finditer(self.stripped):
            close_paren = self.match_paren(m.end() - 1)
            if close_paren < 0:
                continue
            # Definition, not declaration or call: the parameter list must
            # lead to a `{` before any `;` (specifiers like noexcept may
            # sit between).
            i = close_paren + 1
            while i < len(self.stripped) and self.stripped[i] not in "{;":
                i += 1
            if i >= len(self.stripped) or self.stripped[i] != "{":
                continue
            end = self.match_brace(i)
            if end < 0:
                continue
            body = self.stripped[i:end + 1]
            for sm in SELECTION_LOCK_RE.finditer(body):
                self.report(
                    self.line_of(i + sm.start()),
                    "delegated-apply-no-selection-lock",
                    "selection-lock access inside a delegated-apply body; "
                    "the delegating combiner released selection before "
                    "publishing groups, and a claim winner re-entering "
                    "selection while the combiner parks on the group's "
                    "done word inverts the wait order (DESIGN.md §13)")

    def first_call_arg(self, open_paren: int) -> str | None:
        """First argument of the call whose '(' sits at `open_paren` in the
        stripped text (text up to the first depth-1 comma or the matching
        ')'), whitespace-normalized. None if the parens never close."""
        depth = 0
        for i in range(open_paren, len(self.stripped)):
            c = self.stripped[i]
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
                if depth == 0:
                    return re.sub(r"\s+", "",
                                  self.stripped[open_paren + 1:i])
            elif c == "," and depth == 1:
                return re.sub(r"\s+", "", self.stripped[open_paren + 1:i])
        return None

    def check_phase_telemetry_pairing(self) -> None:
        if self.zone != "core":
            return
        # (offset-of-'(', first-arg) for every phase_exit, in file order.
        exits = []
        for m in PHASE_EXIT_RE.finditer(self.stripped):
            exits.append((m.start(), self.first_call_arg(m.end() - 1)))
        for m in PHASE_ENTER_RE.finditer(self.stripped):
            arg = self.first_call_arg(m.end() - 1)
            line = self.line_of(m.start())
            matched_at = -1
            for start, exit_arg in exits:
                if start > m.start() and exit_arg == arg:
                    matched_at = start
                    break
            if matched_at < 0:
                self.report(
                    line, "phase-telemetry-pairing",
                    f"phase_enter({arg}) has no later phase_exit for the "
                    "same phase in this file; a dangling begin shows up "
                    "as an orphan in the Chrome trace")
                continue
            if RETURN_RE.search(self.stripped[m.end():matched_at]):
                self.report(
                    line, "phase-telemetry-pairing",
                    f"return between phase_enter({arg}) and its matching "
                    "phase_exit; early exits must emit phase_exit first "
                    "or hoist the return past the pair")

    def check_node_alloc_via_facade(self) -> None:
        if self.zone != "ds":
            return
        for m in NEW_DELETE_RE.finditer(self.stripped):
            kw = m.group(1)
            # `= delete` / `= new` is never an allocation: the former is a
            # deleted special member, the latter is not valid C++ without an
            # operand — but `x = new Node` IS, so only `delete` is exempt.
            before = self.stripped[:m.start()].rstrip()
            if kw == "delete" and before.endswith("="):
                continue
            if kw == "new":
                self.report(
                    self.line_of(m.start()), "node-alloc-via-facade",
                    "raw 'new' in src/ds/; node allocation must go through "
                    "htm::make (hot paths) or mem::alloc — pooled blocks "
                    "carry the ownership header cross-thread retirement "
                    "relies on")
            else:
                self.report(
                    self.line_of(m.start()), "node-alloc-via-facade",
                    "raw 'delete' in src/ds/; use mem::dealloc for "
                    "single-owner teardown or htm::retire/mem::retire for "
                    "published nodes — a raw delete on a pooled block "
                    "corrupts the arena")

    def tx_bodies(self):
        """Yield (start_offset, end_offset) of every htm::attempt lambda
        body (offsets of '{' and its matching '}')."""
        for m in ATTEMPT_RE.finditer(self.stripped):
            open_idx = self.stripped.find("{", m.end())
            if open_idx < 0:
                continue
            close_idx = self.match_brace(open_idx)
            if close_idx < 0:
                continue
            yield open_idx, close_idx

    def check_tx_bodies(self) -> None:
        for open_idx, close_idx in self.tx_bodies():
            body = self.stripped[open_idx + 1:close_idx]
            base = open_idx + 1

            for rx, what in BLOCKING_RES:
                for m in rx.finditer(body):
                    self.report(
                        self.line_of(base + m.start()), "tx-blocking-call",
                        f"{what} inside a transaction body; transactions "
                        "must never block (deadlocks against the "
                        "quiescence gate)")

            for rx, what in TX_STRONG_RES:
                for m in rx.finditer(body):
                    self.report(
                        self.line_of(base + m.start()), "tx-strong-op",
                        f"{what} inside a transaction body; strong "
                        "mutations must run outside transactions "
                        "(use tx_write for buffered writes)")

            for m in TELEMETRY_CALL_RE.finditer(body):
                self.report(
                    self.line_of(base + m.start()), "tx-telemetry-call",
                    "telemetry call inside a transaction body; an event "
                    "record is a non-transactional side effect that "
                    "survives aborts and replays on retry — hook around "
                    "the attempt, not inside it")

            self.check_catch_all(body, base)

            if self.zone == "core":
                self.check_subscribe_first(body, base)

    def check_catch_all(self, body: str, base: int) -> None:
        for m in re.finditer(r"\bcatch\s*\(\s*\.\.\.\s*\)", body):
            open_idx = body.find("{", m.end())
            if open_idx < 0:
                continue
            depth = 0
            close_idx = -1
            for i in range(open_idx, len(body)):
                if body[i] == "{":
                    depth += 1
                elif body[i] == "}":
                    depth -= 1
                    if depth == 0:
                        close_idx = i
                        break
            handler = body[open_idx:close_idx] if close_idx > 0 else ""
            if not re.search(r"\bthrow\s*;", handler):
                self.report(
                    self.line_of(base + m.start()), "tx-catch-all",
                    "catch (...) without rethrow inside a transaction "
                    "body; swallowing TxAbort breaks the abort protocol")

    def check_subscribe_first(self, body: str, base: int) -> None:
        first_stmt_end = body.find(";")
        first_stmt = body[:first_stmt_end] if first_stmt_end >= 0 else body
        if not SUBSCRIBE_RE.search(first_stmt):
            self.report(
                self.line_of(base), "tx-subscribe-first",
                "engine transaction body must subscribe to the elided "
                "lock in its first statement (TLE discipline: the lock "
                "word joins the read set before any data access)")

    def run(self) -> list[Diagnostic]:
        self.check_pragma_once()
        self.check_includes()
        self.check_strong_outside_sim_htm()
        self.check_raw_atomic_in_core()
        self.check_raw_atomic_in_telemetry()
        self.check_seq_cst_justification()
        self.check_tsa_escape_justification()
        self.check_scan_requires_selection_lock()
        self.check_cross_shard_lock_order()
        self.check_delegated_apply_no_selection_lock()
        self.check_node_alloc_via_facade()
        self.check_phase_telemetry_pairing()
        self.check_tx_bodies()
        return self.diags


def collect_files(paths: list[str]) -> list[str]:
    files = []
    for p in paths:
        if not os.path.exists(p):
            raise FileNotFoundError(p)
        if os.path.isfile(p):
            files.append(p)
            continue
        for root, dirs, names in os.walk(p):
            dirs[:] = sorted(d for d in dirs
                             if not d.startswith(("build", ".")))
            for name in sorted(names):
                _, ext = os.path.splitext(name)
                if ext in SOURCE_EXTS:
                    files.append(os.path.join(root, name))
    return files


def lint_paths(paths: list[str]) -> list[Diagnostic]:
    diags = []
    for path in collect_files(paths):
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"{path}: cannot read: {e}", file=sys.stderr)
            continue
        diags.extend(FileLinter(path, text).run())
    return diags


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Lint C++ sources for HCF/simulated-HTM protocol "
                    "violations.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="diagnostic output format (default: text)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids with descriptions and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.format == "json":
            print(json.dumps(
                [{"rule": rule, "description": desc}
                 for rule, desc in sorted(RULES.items())], indent=2))
        else:
            width = max(len(rule) for rule in RULES)
            for rule, desc in sorted(RULES.items()):
                print(f"{rule:<{width}}  {desc}")
        return 0

    if not args.paths:
        parser.error("paths are required unless --list-rules is given")

    try:
        diags = lint_paths(args.paths)
    except FileNotFoundError as e:
        # A typo'd path must not read as "0 diagnostics, all clean".
        print(f"hcf_lint: error: no such file or directory: {e.args[0]}",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(
            [{"path": d.path, "line": d.line, "rule": d.rule,
              "message": d.message} for d in diags], indent=2))
    else:
        for d in diags:
            print(d)
    if not args.quiet:
        print(f"hcf_lint: {len(diags)} diagnostic(s)", file=sys.stderr)
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
