#!/usr/bin/env python3
"""Selftest for hcf_lint.py: lints every fixture under fixtures/ and
asserts the emitted diagnostics match the `// expect-lint: rule-id` markers
exactly (file, line, and rule). Fixtures named good_* carry no markers and
must produce zero diagnostics; fixtures named bad_* must make the linter
fail with precisely the marked diagnostics — no more, no less.

Run directly or via the `lint_selftest` CTest entry. Exit 0 iff every
fixture behaves as marked.
"""

from __future__ import annotations

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import hcf_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")
EXPECT_RE = re.compile(r"expect-lint:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")


def expected_diags(path: str) -> set[tuple[int, str]]:
    expected = set()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = EXPECT_RE.search(line)
            if not m:
                continue
            for rule in re.split(r"\s*,\s*", m.group(1)):
                expected.add((lineno, rule))
    return expected


def main() -> int:
    fixtures = sorted(
        os.path.join(FIXTURES, name)
        for name in os.listdir(FIXTURES)
        if os.path.splitext(name)[1] in hcf_lint.SOURCE_EXTS)
    if not fixtures:
        print("selftest: no fixtures found", file=sys.stderr)
        return 1

    failures = 0
    for path in fixtures:
        name = os.path.basename(path)
        expected = expected_diags(path)
        actual = {(d.line, d.rule) for d in hcf_lint.lint_paths([path])}

        if name.startswith("good_") and expected:
            print(f"FAIL {name}: good fixture carries expect-lint markers")
            failures += 1
            continue
        if name.startswith("bad_") and not expected:
            print(f"FAIL {name}: bad fixture has no expect-lint markers")
            failures += 1
            continue

        if actual == expected:
            verdict = "clean" if not expected else f"{len(expected)} diags"
            print(f"ok   {name}: {verdict}")
            continue

        failures += 1
        print(f"FAIL {name}:")
        for line, rule in sorted(expected - actual):
            print(f"  missing   line {line}: [{rule}]")
        for line, rule in sorted(actual - expected):
            print(f"  unexpected line {line}: [{rule}]")

    if failures:
        print(f"selftest: {failures} fixture(s) failed", file=sys.stderr)
        return 1
    print(f"selftest: {len(fixtures)} fixtures ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
