#!/usr/bin/env python3
"""Selftest for hcf_semalint.py: analyzes every fixture under
sema_fixtures/ and asserts the findings match the `// expect-sema: rule`
markers exactly (line and rule). good_* fixtures carry no markers and must
be clean; bad_* fixtures must be flagged precisely.

It additionally proves the semantic linter's reason to exist: every
bad_cross_* fixture is also run through the LEXICAL linter (hcf_lint.py),
which must emit zero diagnostics — the violation is only visible across
function boundaries.

Exits 77 (the CTest SKIP_RETURN_CODE convention) when libclang is not
available, so GCC-only environments skip rather than fail.
"""

from __future__ import annotations

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import hcf_lint  # noqa: E402
import hcf_semalint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "sema_fixtures")
EXPECT_RE = re.compile(r"expect-sema:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")
CLANG_ARGS = ["-std=c++17"]


def expected_findings(path: str) -> set[tuple[int, str]]:
    expected = set()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = EXPECT_RE.search(line)
            if not m:
                continue
            for rule in re.split(r"\s*,\s*", m.group(1)):
                expected.add((lineno, rule))
    return expected


def main() -> int:
    cindex = hcf_semalint.load_cindex()
    if cindex is None:
        print("selftest_sema: libclang not available; skipping",
              file=sys.stderr)
        return hcf_semalint.SKIP_EXIT

    fixtures = sorted(
        os.path.join(FIXTURES, name)
        for name in os.listdir(FIXTURES)
        if name.endswith(".cpp"))
    if not fixtures:
        print("selftest_sema: no fixtures found", file=sys.stderr)
        return 1

    failures = 0
    for path in fixtures:
        name = os.path.basename(path)
        expected = expected_findings(path)
        findings, errors = hcf_semalint.analyze(
            cindex, [(path, CLANG_ARGS)], [], False)
        if errors:
            print(f"FAIL {name}: fixture failed to parse")
            failures += 1
            continue
        actual = {(f.line, f.rule) for f in findings}

        if name.startswith("good_") and expected:
            print(f"FAIL {name}: good fixture carries expect-sema markers")
            failures += 1
            continue
        if name.startswith("bad_") and not expected:
            print(f"FAIL {name}: bad fixture has no expect-sema markers")
            failures += 1
            continue

        ok = actual == expected

        # The point of the semantic linter: cross-function fixtures must
        # be invisible to the lexical one.
        lexically_clean = True
        if name.startswith("bad_cross_"):
            lex = hcf_lint.lint_paths([path])
            if lex:
                lexically_clean = False
                print(f"FAIL {name}: lexical linter unexpectedly sees it:")
                for d in lex:
                    print(f"  {d}")
                failures += 1

        if ok and lexically_clean:
            verdict = "clean" if not expected else f"{len(expected)} sema"
            if name.startswith("bad_cross_"):
                verdict += ", lexically invisible"
            print(f"ok   {name}: {verdict}")
            continue

        if not ok:
            failures += 1
            print(f"FAIL {name}:")
            for line, rule in sorted(expected - actual):
                print(f"  missing    line {line}: [{rule}]")
            for line, rule in sorted(actual - expected):
                print(f"  unexpected line {line}: [{rule}]")

    if failures:
        print(f"selftest_sema: {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    print(f"selftest_sema: {len(fixtures)} fixtures ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
