// lint:zone(tests)
// Known-bad: catch (...) without rethrow inside a transaction body. TxAbort
// is how the simulator unwinds doomed transactions (htm.hpp usage
// restrictions); swallowing it turns an abort into a zombie commit.
#include "sim_htm/htm.hpp"

int swallow_inside_tx(hcf::htm::TxCell<int>& cell) {
  int v = 0;
  hcf::htm::attempt([&] {
    try {
      v = cell.read();
    } catch (...) {      // expect-lint: tx-catch-all
      v = -1;            // TxAbort swallowed: the abort never propagates
    }
  });
  return v;
}

int rethrow_is_fine(hcf::htm::TxCell<int>& cell) {
  int v = 0;
  hcf::htm::attempt([&] {
    try {
      v = cell.read();
    } catch (...) {
      v = -1;
      throw;  // rethrow keeps the abort protocol intact
    }
  });
  return v;
}
