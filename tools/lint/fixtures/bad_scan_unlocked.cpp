// lint:zone(core)
// Known-bad: publication-array scans with no visible serialization — no
// '// scan-locked:' marker and no selection-lock acquisition anywhere near
// the call. An unlocked scan races clear_slot against concurrent combiners.

template <typename PA, typename F>
void unjustified_scan(PA& pa, F f) {
  pa.for_each_announced(f);  // expect-lint: scan-requires-selection-lock
}

template <typename PA, typename Out, typename F>
void unjustified_collect(PA& pa, Out& out, F f) {
  // A plain explanatory comment is not a justification marker.
  pa.collect_announced(out, f);  // expect-lint: scan-requires-selection-lock
}

template <typename PA, typename F>
void lock_outside_window(PA& pa, F f) {
  pa.selection_lock().lock();
  f(1);
  f(2);
  f(3);
  f(4);
  f(5);
  f(6);
  f(7);
  f(8);
  f(9);
  f(10);
  f(11);
  pa.for_each_announced(f);  // expect-lint: scan-requires-selection-lock
  pa.selection_lock().unlock();
}
