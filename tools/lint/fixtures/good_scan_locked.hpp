#pragma once
// lint:zone(core)
// Good: every publication-array scan is visibly serialized — by a
// '// scan-locked:' marker on the same line or in the comment block
// directly above, or by a selection-lock acquisition (lock/try_lock or a
// LockGuard) within the preceding lines.

template <typename PA, typename F>
void marker_same_line(PA& pa, F f) {
  pa.for_each_announced(f);  // scan-locked: caller holds pa.selection_lock()
}

template <typename PA, typename Out, typename F>
void marker_block_above(PA& pa, Out& out, F f) {
  // scan-locked: the combiner acquired pa.selection_lock() before calling
  // this helper and holds it for the whole selection phase.
  pa.collect_announced(out, f);
}

template <typename PA, typename F>
void lock_in_window(PA& pa, F f) {
  pa.selection_lock().lock();
  pa.for_each_announced(f);
  pa.selection_lock().unlock();
}

template <typename PA, typename Out, typename F>
void try_lock_in_window(PA& pa, Out& out, F f) {
  if (pa.selection_lock().try_lock()) {
    pa.collect_announced(out, f);
    pa.selection_lock().unlock();
  }
}

template <typename PA, typename Lock, typename F>
void guard_in_window(PA& pa, Lock& lock, F f) {
  sync::LockGuard<Lock> guard(lock);
  pa.for_each_announced(f);
}
