// Known-good: cross-shard lock handling that respects the global
// ascending acquisition order (DESIGN.md §11). The descending RELEASE
// loop must not be flagged — only acquisitions (`.lock();` statements)
// are ordered; `->lock().unlock();` is the accessor spelling of a
// release. The range-for acquisition is fine because container order is
// index order.
#pragma once
// lint:zone(core)

#include <cstddef>
#include <vector>

struct FakeLock {
  void lock() {}
  bool try_lock() { return true; }
  void unlock() {}
};

struct FakeShard {
  FakeLock& lock() { return lock_; }
  FakeLock lock_;
};

struct FakeShardedEngine {
  std::vector<FakeShard*> shards_;

  void lock_all_ascending() {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->lock().lock();
    }
  }

  void lock_all_range_for() {
    for (FakeShard* shard : shards_) shard->lock().lock();
  }

  // Release order is unconstrained; the reverse walk is idiomatic and the
  // unlock statement must not match the acquisition pattern.
  void unlock_all() {
    for (std::size_t i = shards_.size(); i-- > 0;) {
      shards_[i]->lock().unlock();
    }
  }
};
