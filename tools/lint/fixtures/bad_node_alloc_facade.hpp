// lint:zone(ds)
// Known-bad: raw new/delete on node paths in a ds/ structure. A raw `new`
// produces a block with no ownership header, so a later htm::retire from
// another thread reads garbage where pool.hpp expects magic/owner bits; a
// raw `delete` of a facade-allocated node frees the *header* address minus
// nothing — i.e. the object pointer — and corrupts the arena chunk.
#pragma once

#include <cstdint>

namespace fixture {

struct FacadeStack {
  struct Node {
    std::uint64_t value;
    Node* next;
  };

  Node* head = nullptr;

  void push(std::uint64_t v) {
    Node* n = new Node{v, head};  // expect-lint: node-alloc-via-facade
    head = n;
  }

  void pop() {
    Node* n = head;
    head = n->next;
    delete n;  // expect-lint: node-alloc-via-facade
  }

  ~FacadeStack() {
    while (head != nullptr) {
      Node* n = head;
      head = n->next;
      delete n;  // expect-lint: node-alloc-via-facade
    }
  }
};

}  // namespace fixture
