// Known-bad: suppression directives naming rules this linter does not
// have. A typo'd suppression used to fail silently open — the directive
// matched nothing and the misspelled rule kept firing elsewhere with the
// author believing it was handled.

void typod_line_directive() {}  // lint:allow(tx-strong-opp) expect-lint: lint-directive

// lint:allow-file(no-such-rule) expect-lint: lint-directive
