// lint:zone(tests)
// Known-bad: telemetry calls inside an htm::attempt transaction body. An
// event record is a non-transactional side effect: it survives an abort
// and replays on every retry, inflating counts and (on real HTM) adding
// abort-prone cache traffic. Hooks belong around the attempt.
#include "sim_htm/htm.hpp"
#include "telemetry/telemetry.hpp"

void traced_transaction(int* word) {
  using namespace hcf;
  telemetry::phase_enter(0);  // fine: outside the transaction
  htm::attempt([&] {
    telemetry::htm_commit(false);  // expect-lint: tx-telemetry-call
    (void)htm::read(word);
    telemetry::record(telemetry::EventType::PhaseExit);  // expect-lint: tx-telemetry-call
  });
  telemetry::phase_exit(0, true);  // fine: outside the transaction
}
