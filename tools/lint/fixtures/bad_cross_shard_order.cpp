// Known-bad: all-shard lock acquisitions that walk the shard indices
// backwards (or with no visible ascending step). Two such loops running
// concurrently with the canonical ascending walk deadlock; every
// acquisition must use the one global ascending order (DESIGN.md §11).
// lint:zone(core)

#include <cstddef>
#include <vector>

struct FakeLock {
  void lock() {}
  bool try_lock() { return true; }
  void unlock() {}
};

struct FakeShard {
  FakeLock& lock() { return lock_; }
  FakeLock lock_;
};

struct BadShardedEngine {
  std::vector<FakeShard*> shards_;

  void lock_all_descending() {
    for (std::size_t i = shards_.size(); i-- > 0;) {  // expect-lint: cross-shard-lock-order
      shards_[i]->lock().lock();
    }
  }

  void try_lock_all_descending() {
    for (std::size_t i = shards_.size() - 1; i + 1 > 0; --i) {  // expect-lint: cross-shard-lock-order
      shards_[i]->lock().try_lock();
    }
  }
};
