// lint:zone(tests)
// Known-good: deliberate violations carrying lint:allow suppressions, the
// escape hatch negative tests use. The selftest asserts zero diagnostics.
#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"

void provoke_strong_in_tx(hcf::htm::TxCell<int>& cell) {
  hcf::htm::attempt([&] {
    cell.store(1);  // lint:allow(tx-strong-op) — provoked on purpose
  });
}

void tests_need_no_subscription(hcf::htm::TxCell<int>& cell) {
  // tx-subscribe-first is scoped to src/core/: raw simulator tests
  // exercise transactions with no lock at all.
  hcf::htm::attempt([&] { (void)cell.read(); });
}
