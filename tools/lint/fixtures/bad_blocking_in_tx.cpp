// lint:zone(tests)
// Known-bad: blocking calls inside a transaction body. A transaction that
// waits can deadlock against wait_writeback_drain (the lock holder spins on
// the committing transaction, which spins on the lock holder).
#include <thread>

#include "sim_htm/htm.hpp"
#include "sync/tx_lock.hpp"

void blocking_inside_tx(hcf::sync::TxLock& lock, hcf::sync::TxLock& other) {
  hcf::htm::attempt([&] {
    lock.lock();                     // expect-lint: tx-blocking-call
    (void)other.try_lock();          // expect-lint: tx-blocking-call
    other.wait_until_free();         // expect-lint: tx-blocking-call
    std::this_thread::yield();       // expect-lint: tx-blocking-call
  });
}
