// Known-good: NO_THREAD_SAFETY_ANALYSIS escapes carrying '// tsa:'
// justifications, plus the macro's own preprocessor plumbing (exempt: a
// #define is not an escape site).
#include "util/thread_annotations.hpp"

// tsa: deliberate double entry — depth-counted reentrant guards are a
// shape the non-reentrant capability model cannot express.
NO_THREAD_SAFETY_ANALYSIS
void justified_by_comment_block_above() {}

void justified_same_line() NO_THREAD_SAFETY_ANALYSIS {}  // tsa: example

#define LOCAL_TSA_ALIAS NO_THREAD_SAFETY_ANALYSIS
