// lint:zone(src)
// Known-bad: library code (outside src/sim_htm/) calling htm::strong_*
// directly instead of going through TxCell. TxCell is the single funnel for
// strong mutations so the orec protocol stays auditable in one place.
#pragma once

#include <cstdint>

#include "sim_htm/htm.hpp"

namespace fixture {

inline void publish(std::uint64_t* word) {
  hcf::htm::strong_store(word, 1u);        // expect-lint: strong-outside-sim-htm
}

inline bool claim(std::uint64_t* word) {
  return hcf::htm::strong_cas(word, 0u, 1u);  // expect-lint: strong-outside-sim-htm
}

}  // namespace fixture
