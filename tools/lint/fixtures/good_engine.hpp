// lint:zone(core)
// Known-good engine idiom: every protocol rule satisfied. The selftest
// asserts the linter emits exactly zero diagnostics for this file.
#pragma once

#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"
#include "sync/tx_lock.hpp"

namespace fixture {

template <typename DS, typename Op>
class GoodEngine {
 public:
  bool try_speculative(Op& op) {
    lock_.wait_until_free();
    const bool committed = hcf::htm::attempt([&] {
      lock_.subscribe();
      if (op.status_tx() != 0) hcf::htm::abort_tx();
      op.run_seq(ds_);
      slot_.tx_write(nullptr);  // buffered: commits with the op's effect
    });
    return committed;
  }

  void announce(Op* op) {
    slot_.store(op);  // strong store outside any transaction: fine
  }

 private:
  DS ds_;
  hcf::sync::TxLock lock_;
  hcf::htm::TxCell<Op*> slot_;
};

}  // namespace fixture
