// Known-bad: NO_THREAD_SAFETY_ANALYSIS escapes with no '// tsa:'
// justification. Every escape from the clang thread-safety analysis is a
// proof obligation and must say what the capability model cannot express
// at that site (docs/static_analysis.md).
#include "util/thread_annotations.hpp"

NO_THREAD_SAFETY_ANALYSIS  // expect-lint: tsa-escape-justification
void bare_escape() {}

// An ordinary explanatory comment is not a justification marker: it says
// what the function does, not why the analysis had to be disabled.
NO_THREAD_SAFETY_ANALYSIS  // expect-lint: tsa-escape-justification
void commented_but_unjustified() {}
