// lint:zone(core)
// Known-bad phase telemetry: a phase_enter with no matching phase_exit
// leaves a dangling begin (the Chrome exporter reports it as an orphan),
// and a return between an enter and its exit drops the exit on that path.
#pragma once
#include "telemetry/telemetry.hpp"

namespace fixture {

inline void dangling_enter() {
  hcf::telemetry::phase_enter(2);  // expect-lint: phase-telemetry-pairing
  // ... work, but the author forgot the exit; the only exit below is for
  // a different phase, so it does not pair.
  hcf::telemetry::phase_exit(3, true);
}

inline int early_return(bool done) {
  hcf::telemetry::phase_enter(0);  // expect-lint: phase-telemetry-pairing
  if (done) return 0;  // leaves phase 0 open on this path
  hcf::telemetry::phase_exit(0, false);
  return -1;
}

}  // namespace fixture
