// lint:zone(tests)
// Known-bad: futex parking reached from inside a transaction body. A
// parked transaction deadlocks against the quiescence gate (the committer
// spins on write-back while the parked waiter holds a pending commit
// slot); on real HTM the deschedule simply aborts the transaction. Wake
// syscalls are equally illegal — any futex traffic inside a transaction
// is a non-transactional side effect.
//
// Self-contained stubs (the lexical linter never compiles fixtures).

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
}  // namespace hcf::htm

namespace hcf::util {
inline void park(const unsigned* /*addr*/, unsigned /*expected*/) {}
}  // namespace hcf::util

inline void futex_wait(const void* /*addr*/, unsigned /*expected*/) {}
inline void futex_wake(const void* /*addr*/, int /*count*/) {}

struct Epoch {
  void park_if(unsigned /*seen*/) {}
  void park_on_epoch(unsigned /*seen*/) {}
  void wake_epoch_waiters() {}
};

void parking_inside_tx(Epoch& epoch, unsigned* word) {
  hcf::htm::attempt([&] {
    hcf::util::park(word, 0u);       // expect-lint: tx-blocking-call
    epoch.park_if(0u);               // expect-lint: tx-blocking-call
    epoch.park_on_epoch(1u);         // expect-lint: tx-blocking-call
    epoch.wake_epoch_waiters();      // expect-lint: tx-blocking-call
    futex_wait(word, 0u);            // expect-lint: tx-blocking-call
    futex_wake(word, 1);             // expect-lint: tx-blocking-call
  });
}
