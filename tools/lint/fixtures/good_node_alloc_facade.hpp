// lint:zone(ds)
// Known-good: all node memory flows through the mem:: facade, so every
// block carries the ownership header cross-thread retirement keys on.
// Deleted special members spell `= delete` without being an allocation
// expression, and a deliberate escape (a non-node scratch buffer) is
// allow-listed with a justification.
#pragma once

#include <cstdint>

namespace fixture {

// Fixture stand-ins for the real facade (mem/alloc.hpp); the lexical rule
// keys on the new/delete keywords, not on these names resolving.
namespace mem {
template <typename T, typename... Args>
T* alloc(Args&&... args);
template <typename T>
void dealloc(T* p);
template <typename T>
void retire(T* p);
}  // namespace mem

struct FacadeStack {
  struct Node {
    std::uint64_t value;
    Node* next;
  };

  Node* head = nullptr;

  FacadeStack() = default;
  FacadeStack(const FacadeStack&) = delete;
  FacadeStack& operator=(const FacadeStack&) = delete;

  void push(std::uint64_t v) {
    Node* n = mem::alloc<Node>();
    n->value = v;
    n->next = head;
    head = n;
  }

  void pop() {
    Node* n = head;
    head = n->next;
    mem::retire(n);
  }

  ~FacadeStack() {
    while (head != nullptr) {
      Node* n = head;
      head = n->next;
      mem::dealloc(n);
    }
  }

  // Non-node scratch memory may escape the facade deliberately, with the
  // rationale on the allow line.
  char* make_scratch(std::size_t n) {
    return new char[n];  // lint:allow(node-alloc-via-facade) — untyped scratch, never retired
  }
};

}  // namespace fixture
