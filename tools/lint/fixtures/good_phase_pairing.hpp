// lint:zone(core)
// Known-good phase telemetry: every phase_enter is lexically paired with a
// later phase_exit for the same phase expression, and no return sits
// between the pair. Multiple exits for one enter (branchy completion) are
// fine — the rule matches the first one with an equal phase argument.
#pragma once
#include "telemetry/telemetry.hpp"

namespace fixture {

inline int paired_phases(bool fast_path) {
  hcf::telemetry::phase_enter(0);
  const bool done = fast_path;
  hcf::telemetry::phase_exit(0, done);
  if (done) return 0;

  hcf::telemetry::phase_enter(3);
  hcf::telemetry::phase_exit(3, true);
  return 3;
}

// Branchy shape: one enter, several exits, returns only after an exit.
inline int branchy(bool a, bool b) {
  hcf::telemetry::phase_enter(1);
  if (a) {
    hcf::telemetry::phase_exit(1, true);
    return 1;
  }
  if (b) {
    hcf::telemetry::phase_exit(1, false);
    hcf::telemetry::phase_enter(3);
    hcf::telemetry::phase_exit(3, true);
    return 3;
  }
  hcf::telemetry::phase_exit(1, false);
  return -1;
}

}  // namespace fixture
