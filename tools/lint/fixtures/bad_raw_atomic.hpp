// lint:zone(core)
// Known-bad: raw std::atomic state in an engine. A strong store to this
// word does not bump any orec, so subscribed transactions are NOT doomed —
// the simulator's equivalent of writing to an elided location without
// invalidating the speculating core's cache line.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

template <typename DS>
class RawAtomicEngine {
 private:
  DS ds_;
  std::atomic<std::uint32_t> status_{0};  // expect-lint: raw-atomic-in-core
  std::atomic<bool> busy_{false};         // expect-lint: raw-atomic-in-core
};

}  // namespace fixture
