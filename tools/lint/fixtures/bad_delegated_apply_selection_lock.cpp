// lint:zone(core)
// Negative fixture: a delegated-apply body that touches the selection
// lock. The delegating combiner released selection before publishing the
// group, so re-entering it here inverts the wait order against the
// combiner parked on the group's done word.
struct PubArray {
  struct Lock {
    void lock() {}
    void unlock() {}
  };
  Lock& selection_lock() { return lock_; }
  Lock lock_;
};

struct Group {
  void finish() {}
};

void apply_delegated_group(PubArray& pa, Group* group) {
  pa.selection_lock().lock();  // expect-lint: delegated-apply-no-selection-lock
  pa.selection_lock().unlock();  // expect-lint: delegated-apply-no-selection-lock
  group->finish();
}

// Call sites near selection code are exempt: only definitions are checked.
void combiner_path(PubArray& pa, Group* group) {
  pa.selection_lock().lock();
  pa.selection_lock().unlock();
  apply_delegated_group(pa, group);
}
