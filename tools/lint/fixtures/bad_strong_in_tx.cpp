// lint:zone(tests)
// Known-bad: strong (dooming) mutations inside a transaction body. On real
// HTM these self-abort; on the simulator they deadlock or corrupt the orec
// protocol, which is why both the linter and HCF_CHECK_PROTOCOL flag them.
#include "sim_htm/htm.hpp"
#include "sim_htm/txcell.hpp"

void strong_ops_inside_tx(hcf::htm::TxCell<int>& cell, int* word) {
  hcf::htm::attempt([&] {
    cell.store(1);                    // expect-lint: tx-strong-op
    (void)cell.cas(1, 2);             // expect-lint: tx-strong-op
    (void)cell.fetch_add(3);          // expect-lint: tx-strong-op
    cell.store_plain(4);              // expect-lint: tx-strong-op
    hcf::htm::strong_store(word, 5);  // expect-lint: tx-strong-op
  });
}
