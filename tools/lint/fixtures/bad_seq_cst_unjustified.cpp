// lint:zone(sim_htm)
// Known-bad: memory_order_seq_cst in the substrate without the required
// '// seq_cst:' justification. The substrate runs on acquire/release; a
// seq_cst without a written proof obligation is either a leftover from
// before the ordering diet or an unproven assumption.
#include <atomic>

std::atomic<int> g{0};

int unjustified_load() {
  return g.load(std::memory_order_seq_cst);  // expect-lint: seq-cst-justification
}

void unjustified_fence() {
  // A plain explanatory comment is not a justification marker.
  std::atomic_thread_fence(std::memory_order_seq_cst);  // expect-lint: seq-cst-justification
}

void unjustified_rmw() {
  g.fetch_add(1, std::memory_order_seq_cst);  // expect-lint: seq-cst-justification
}
