// lint:zone(core)
// Known-good: lint:allow-file directives are position-independent and
// accept comma-separated rule lists. The violations here sit ABOVE the
// directive at the bottom of the file and must still be suppressed — the
// directive pre-pass scans the whole file before any rule runs.
#include <atomic>

#include "sim_htm/htm.hpp"

struct EngineState {
  std::atomic<int> counter{0};  // raw-atomic-in-core if unsuppressed
};

inline void bump(std::atomic<int>& word) {
  hcf::htm::strong_fetch_add(word, 1);  // strong-outside-sim-htm likewise
}

// One directive, two rules, below both violations:
// lint:allow-file(raw-atomic-in-core, strong-outside-sim-htm)
