#pragma once
// lint:zone(core)
// Positive fixture: a delegated-apply body that stays away from the
// selection lock — it copies the group out, applies, and signals the done
// word. Other lock traffic (the data-structure lock for the serial
// fallback) is legitimate.
struct DsLock {
  void lock() {}
  void unlock() {}
};

struct Group {
  int count = 0;
  void finish() {}
};

inline void apply_delegated_group(DsLock& ds_lock, Group* group) {
  ds_lock.lock();
  group->count = 0;
  ds_lock.unlock();
  group->finish();
}
