// lint:zone(core)
// Known-bad: an engine transaction that touches the data structure without
// first subscribing to the elided lock — the lazy-subscription bug class
// (Dice et al.): the transaction can commit concurrently with a lock
// holder's un-instrumented writes.
#pragma once

#include "sim_htm/htm.hpp"
#include "sync/tx_lock.hpp"

namespace fixture {

template <typename DS, typename Op>
class UnsubscribedEngine {
 public:
  bool try_speculative(Op& op) {
    return hcf::htm::attempt([&] {  // expect-lint: tx-subscribe-first
      op.run_seq(ds_);
      lock_.subscribe();  // too late: run_seq already read shared state
    });
  }

 private:
  DS ds_;
  hcf::sync::TxLock lock_;
};

}  // namespace fixture
