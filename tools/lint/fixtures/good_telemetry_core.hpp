// lint:zone(telemetry)
// lint:telemetry-core — fixture standing in for ring_buffer.hpp: the one
// telemetry file allowed to hold raw std::atomic state. The marker must
// exempt it from raw-atomic-in-telemetry.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class SanctionedRingCore {
 private:
  std::atomic<std::uint64_t> head_{0};
  std::atomic<bool> gate_{false};
};

}  // namespace fixture
