// expect-lint: pragma-once
// lint:zone(src)
// Known-bad: header without #pragma once, plus a parent-relative include.
// (The pragma-once diagnostic is reported on line 1 by convention.)

#include "../sim_htm/htm.hpp"  // expect-lint: include-parent

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
