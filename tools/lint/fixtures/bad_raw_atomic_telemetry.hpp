// lint:zone(telemetry)
// Known-bad: raw std::atomic state in the telemetry layer outside the
// sanctioned ring-buffer core. Ad-hoc atomics here are how subtle races
// and hot-path overhead creep in; everything above the core must build on
// EventRing and RuntimeGate.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class AdHocTelemetryCounter {
 private:
  std::atomic<std::uint64_t> events_{0};  // expect-lint: raw-atomic-in-telemetry
  std::atomic<bool> enabled_{false};      // expect-lint: raw-atomic-in-telemetry
};

}  // namespace fixture
