// lint:zone(tests)
// Known-good: parking and waking are perfectly legal OUTSIDE transaction
// bodies — that is exactly where the wait hierarchy lives (a waiter parks
// between speculative attempts, never inside one). The tx-blocking-call
// rule must not fire on park/wake traffic around an attempt.

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
}  // namespace hcf::htm

namespace hcf::util {
inline void park(const unsigned* /*addr*/, unsigned /*expected*/) {}
inline void wake_all(const unsigned* /*addr*/) {}
}  // namespace hcf::util

struct Epoch {
  void park_if(unsigned /*seen*/) {}
  void wake_epoch_waiters() {}
};

int shared_value = 0;

bool run(Epoch& epoch, unsigned* word) {
  epoch.park_if(0u);  // waiting for a combiner, outside any transaction
  const bool committed = hcf::htm::attempt([&] { shared_value += 1; });
  hcf::util::park(word, 0u);
  hcf::util::wake_all(word);
  epoch.wake_epoch_waiters();
  return committed;
}
