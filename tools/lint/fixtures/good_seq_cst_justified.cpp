// lint:zone(sim_htm)
// Both sanctioned justification spellings: a '// seq_cst:' marker on the
// same line, or anywhere in the comment block directly above the
// operation. Non-seq_cst orderings need no marker.
#include <atomic>

std::atomic<int> g{0};

int same_line_marker() {
  return g.load(std::memory_order_seq_cst);  // seq_cst: example total-order proof
}

void block_above_marker() {
  // seq_cst: Dekker/store-buffering pair with a matching fence elsewhere;
  // acquire/release alone cannot order the two store->load pairs.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void weaker_orders_need_no_marker() {
  g.store(1, std::memory_order_release);
  (void)g.load(std::memory_order_acquire);
  g.fetch_add(1, std::memory_order_acq_rel);
}
