// Compiled by tsa_selftest.py with -Wthread-safety -Werror=thread-safety:
// the annotated HCF lock discipline, used correctly, must be warning-free.
// This is the positive control for the bad_* fixtures next to it.
#include <cstddef>

#include "core/operation.hpp"
#include "core/publication_array.hpp"
#include "sync/spinlock.hpp"
#include "sync/tx_lock.hpp"
#include "telemetry/event.hpp"
#include "telemetry/ring_buffer.hpp"

struct TsaNullDs {};

void balanced_spinlock(hcf::sync::SpinLock& l) {
  l.lock();
  l.unlock();
}

void scoped_guards(hcf::sync::SpinLock& s, hcf::sync::TxLock& t) {
  hcf::sync::SpinGuard g1(s);
  hcf::sync::LockGuard<hcf::sync::TxLock> g2(t);
}

void try_lock_branch(hcf::sync::TxLock& l) {
  if (l.try_lock()) l.unlock();
}

void locked_scan(hcf::core::PublicationArray<TsaNullDs>& pa) {
  pa.selection_lock().lock();
  pa.for_each_announced([](hcf::core::Operation<TsaNullDs>*, std::size_t) {});
  pa.clear_slot(0);
  pa.selection_lock().unlock();
}

void vouched_ring_write(hcf::telemetry::EventRing<4>& ring,
                        const hcf::telemetry::Event& e) {
  ring.assume_writer();
  ring.push(e);
  ring.clear();
}
