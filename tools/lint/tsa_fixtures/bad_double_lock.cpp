// Re-acquires a lock the function already holds. TxLock is not reentrant
// (a second lock() would deadlock on the ticket/flag), and the capability
// model rejects the double acquire statically.
#include "sync/tx_lock.hpp"

void double_acquire(hcf::sync::TxLock& l) {
  l.lock();
  l.lock();  // expect-tsa: already held
  l.unlock();
}
