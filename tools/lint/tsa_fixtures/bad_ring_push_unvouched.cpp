// Pushes into a telemetry ring without vouching for writer ownership.
// Rings are single-writer by construction (one per dense thread id);
// assume_writer() is the only sanctioned way to claim that capability,
// so an unvouched push is a cross-thread write waiting to happen.
#include "telemetry/event.hpp"
#include "telemetry/ring_buffer.hpp"

void unvouched_push(hcf::telemetry::EventRing<4>& ring,
                    const hcf::telemetry::Event& e) {
  ring.push(e);  // expect-tsa: requires holding
}
