// Scans the publication array without the selection lock — the race the
// scan-requires-selection-lock lexical rule catches by text and the
// REQUIRES(selection_lock_) annotation catches by proof: an unlocked scan
// races clear_slot against concurrent combiners.
#include <cstddef>

#include "core/operation.hpp"
#include "core/publication_array.hpp"

struct TsaNullDs {};

void unlocked_scan(hcf::core::PublicationArray<TsaNullDs>& pa) {
  pa.for_each_announced(
      [](hcf::core::Operation<TsaNullDs>*, std::size_t) {});
  // expect-tsa: requires holding
}
