// Releases a lock the function never acquired: in the real protocol this
// is the SingleHolder hand-off bug class (releasing the selection lock on
// behalf of a combiner that still owns it).
#include "sync/spinlock.hpp"

void release_unheld(hcf::sync::SpinLock& l) {
  l.unlock();  // expect-tsa: not held
}
