// Acquires the spinlock on every path and never releases it: the
// thread-safety analysis must reject the function.
#include "sync/spinlock.hpp"

void leak_lock(hcf::sync::SpinLock& l) {
  l.lock();
}  // expect-tsa: still held
