// Raw allocation three helpers deep below an htm::attempt body. An
// in-transaction `new` bypasses the htm::make funnel, so an abort leaks
// the node (the write recording it is rolled back, the allocation is
// not). The chain is deliberately deeper than one hop to exercise the
// transitive walk.

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
}  // namespace hcf::htm

struct Node {
  int v = 0;
};

Node* level3() {
  return new Node();  // expect-sema: sema-tx-transitive-purity
}

Node* level2() { return level3(); }

Node* level1() { return level2(); }

bool run() {
  Node* leaked = nullptr;
  return hcf::htm::attempt([&] { leaked = level1(); });
}
