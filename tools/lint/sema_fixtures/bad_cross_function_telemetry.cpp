// Telemetry recording reachable from an htm::attempt body through two
// helpers. The lexical tx-telemetry-call rule sees only the lambda text —
// `step_one(k)` — and stays silent; the event record would survive an
// abort and replay on every retry.

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
}  // namespace hcf::htm

namespace hcf::telemetry {
inline void record_event(int) {}
}  // namespace hcf::telemetry

void step_two(int k) {
  hcf::telemetry::record_event(k);  // expect-sema: sema-telemetry-outside-tx
}

void step_one(int k) { step_two(k + 1); }

bool run(int k) {
  return hcf::htm::attempt([&] { step_one(k); });
}
