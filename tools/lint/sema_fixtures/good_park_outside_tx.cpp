// Known-good: parking is legal OUTSIDE transactions — the wait hierarchy
// parks between speculative attempts, never inside one. The purity walk
// is scoped to code reachable from an htm::attempt body, so the park_if
// in the competition loop below must not be flagged.

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
}  // namespace hcf::htm

struct Epoch {
  void park_if(unsigned) {}
};

int shared_value = 0;

bool run(Epoch& e) {
  e.park_if(0u);  // competition loser parking, outside any transaction
  return hcf::htm::attempt([&] { shared_value += 1; });
}
