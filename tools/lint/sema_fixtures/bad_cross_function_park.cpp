// The cross-function parking violation the lexical linter provably
// misses: the htm::attempt body only calls wait_for_combiner(e) —
// lexically spotless — but the helper parks on the epoch word, so the
// transaction would deschedule mid-speculation (deadlocking the
// simulator's quiescence gate; aborting on real HTM).
// selftest_sema.py asserts that hcf_lint.py emits ZERO diagnostics for
// this file while hcf_semalint.py flags it.
//
// Self-contained on purpose: the stub attempt() has the same shape as
// hcf::htm::attempt so fixtures parse with no include paths.

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
}  // namespace hcf::htm

struct Epoch {
  void park_if(unsigned) {}
};

void wait_for_combiner(Epoch& e) {
  e.park_if(0u);  // expect-sema: sema-tx-transitive-purity
}

bool run(Epoch& e) {
  return hcf::htm::attempt([&] { wait_for_combiner(e); });
}
