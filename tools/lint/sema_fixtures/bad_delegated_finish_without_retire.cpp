// A delegated-apply body that signals the group's done word (or publishes
// the combined epoch) before retiring the group's ops: the sweeping
// combiner treats finish() as "every member is Done" and lets the
// delegation session's stack storage die, so pending ops are lost
// (DESIGN.md §13). Retiring AFTER the publication does not repair it.

struct Op {
  void mark_done(int) {}
};

struct Group {
  Op* ops[2];
  unsigned long count = 0;
  void finish() {}
};

struct PubArray {
  void publish_combined(unsigned long) {}
};

void apply_delegated_group(Group* group) {
  group->finish();  // expect-sema: sema-delegated-retire-before-publish
  for (unsigned long i = 0; i < group->count; ++i) group->ops[i]->mark_done(2);
}

// Direct publish_combined inside a delegated apply without a preceding
// retire is both the general rule violation and the delegated one.
void apply_delegated_direct(Group* group, PubArray& pa) {
  pa.publish_combined(group->count);  // expect-sema: sema-retire-before-publish, sema-delegated-retire-before-publish
  for (unsigned long i = 0; i < group->count; ++i) group->ops[i]->mark_done(2);
  group->finish();
}
