// The seeded cross-function violation the lexical linter provably misses:
// the htm::attempt body only calls helper(l) — lexically spotless — but
// helper acquires a lock, so the transaction can block against the
// quiescence gate. selftest_sema.py asserts that hcf_lint.py emits ZERO
// diagnostics for this file while hcf_semalint.py flags it.
//
// Self-contained on purpose: the stub attempt() has the same shape as
// hcf::htm::attempt so fixtures parse with no include paths.

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
}  // namespace hcf::htm

struct DataLock {
  void lock() {}
  void unlock() {}
};

void helper(DataLock& l) {
  l.lock();  // expect-sema: sema-tx-transitive-purity
  l.unlock();
}

bool run(DataLock& l) {
  return hcf::htm::attempt([&] { helper(l); });
}
