// publish_combined with no preceding mark_done: the combined-count epoch
// moves before the helped ops are retired, so selection-lock waiters wake,
// observe themselves still pending, and fall back to re-polling the
// contended lock line — the exact degradation the waiter protocol exists
// to avoid (DESIGN.md §9.3). Marking done AFTER publishing does not
// repair the ordering.

struct Op {
  void mark_done(int) {}
};

struct PubArray {
  void publish_combined(unsigned long) {}
};

void broken_combiner(PubArray& pa, Op& own, unsigned long k) {
  pa.publish_combined(k);  // expect-sema: sema-retire-before-publish
  own.mark_done(0);
}
