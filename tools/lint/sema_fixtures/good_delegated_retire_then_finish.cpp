// Known-good delegated-apply shapes: the group's ops are retired — either
// directly or through a combine helper the rule follows transitively
// (mirroring CombineCore::apply_delegated_group -> combine_on_htm ->
// retire_prefix) — before finish() releases the session storage.

struct Op {
  void mark_done(int) {}
};

struct Group {
  Op* ops[2];
  unsigned long count = 0;
  void finish() {}
};

struct PubArray {
  void publish_combined(unsigned long) {}
};

void retire_prefix(Group* group, PubArray& pa) {
  for (unsigned long i = 0; i < group->count; ++i) group->ops[i]->mark_done(2);
  pa.publish_combined(group->count);
}

void apply_delegated_group(Group* group, PubArray& pa) {
  retire_prefix(group, pa);
  group->finish();
}

void apply_delegated_direct(Group* group) {
  for (unsigned long i = 0; i < group->count; ++i) group->ops[i]->mark_done(2);
  group->finish();
}
