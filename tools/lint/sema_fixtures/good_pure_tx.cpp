// Known-good transaction: helpers compute, allocation goes through the
// sanctioned hcf::htm::make funnel (the walk classifies calls into
// hcf::htm but never descends into it, so make's internal `new` is not a
// finding), and telemetry fires only after the attempt returns.

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
template <typename T>
T* make(int v) {
  return new T{v};
}
}  // namespace hcf::htm

namespace hcf::telemetry {
inline void commit_event() {}
}  // namespace hcf::telemetry

struct Node {
  int v;
};

int pure_helper(int x) { return x * 2 + 1; }

Node* build(int v) { return hcf::htm::make<Node>(v); }

bool run(int v) {
  Node* n = nullptr;
  const bool ok = hcf::htm::attempt([&] { n = build(pure_helper(v)); });
  hcf::telemetry::commit_event();
  delete n;
  return ok;
}
