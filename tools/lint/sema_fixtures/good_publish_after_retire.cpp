// Known-good combiner shapes for retire-before-publish: mark_done calls
// precede publish_combined either directly or through a retire helper
// (the rule follows the call graph, mirroring CombineCore::retire_prefix).

struct Op {
  void mark_done(int) {}
};

struct PubArray {
  void publish_combined(unsigned long) {}
};

void retire_prefix(Op& own, unsigned long) { own.mark_done(1); }

void direct_combiner(PubArray& pa, Op& own, unsigned long k) {
  own.mark_done(1);
  pa.publish_combined(k);
}

void helper_combiner(PubArray& pa, Op& own, unsigned long k) {
  retire_prefix(own, k);
  pa.publish_combined(k);
}
