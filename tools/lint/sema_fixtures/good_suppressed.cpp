// Known-good: a deliberate in-transaction lock carrying a lint:allow
// suppression — the escape hatch negative tests use. The semantic linter
// honors the same directive grammar as the lexical one.

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
}  // namespace hcf::htm

struct DataLock {
  void lock() {}
  void unlock() {}
};

void deliberate(DataLock& l) {
  l.lock();  // lint:allow(sema-tx-transitive-purity) — provoked on purpose
  l.unlock();
}

bool run(DataLock& l) {
  return hcf::htm::attempt([&] { deliberate(l); });
}
