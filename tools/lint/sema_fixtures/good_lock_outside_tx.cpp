// Known-good: locking is perfectly legal OUTSIDE transactions — the
// purity rule is scoped to code reachable from an htm::attempt body, not
// to every function in the file.

namespace hcf::htm {
template <typename F>
bool attempt(F&& f) {
  f();
  return true;
}
}  // namespace hcf::htm

struct DataLock {
  void lock() {}
  void unlock() {}
};

int shared_value = 0;

void under_lock(DataLock& l) {
  l.lock();
  shared_value += 1;
  l.unlock();
}

bool run(DataLock& l) {
  under_lock(l);
  return hcf::htm::attempt([&] { shared_value += 1; });
}
