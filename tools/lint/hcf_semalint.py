#!/usr/bin/env python3
"""HCF semantic linter: AST-grade, cross-function enforcement of the
transaction-body and combiner-protocol invariants that tools/lint/hcf_lint.py
can only check lexically.

The lexical linter sees the text of an htm::attempt lambda but not the
functions it calls: `htm::attempt([&] { helper(l); })` is lexically clean
even when `helper` takes a lock. This linter parses real translation units
with libclang, builds the intra-TU call graph, and walks it transitively.

Rules:

  sema-tx-transitive-purity
      No blocking call (lock/try_lock/join/sleep/wait_*), raw allocation
      (new / malloc family), write I/O, or strong mutation
      (htm::strong_*) may be *reachable* from an htm::attempt body
      through any chain of helpers defined in the analyzed tree. The
      simulator substrate itself (hcf::htm, hcf::mem) is the sanctioned
      funnel — htm::make / htm::retire_tx allocate and reclaim on the
      transaction's behalf — so the walk classifies calls into it but
      never descends into it.

  sema-telemetry-outside-tx
      No telemetry:: call may be reachable from an htm::attempt body,
      through any number of helpers (the cross-function half of the
      lexical tx-telemetry-call rule): an event record is a
      non-transactional side effect that survives aborts and replays on
      retry.

  sema-retire-before-publish
      Every call to publish_combined (the combined-count epoch bump that
      wakes selection-lock waiters) must be preceded, in statement order
      within the same function, by a call that performs mark_done —
      directly or transitively through a helper. Publishing before
      retiring wakes waiters that still observe their op pending, which
      degrades the O(1) helped-wakeup protocol back to lock re-polling
      (DESIGN.md §9.3).

  sema-delegated-retire-before-publish
      Inside an apply_delegated* body, every completion publication —
      the group's done-word finish() or a direct publish_combined —
      must be preceded, in statement order, by a call that performs
      mark_done directly or transitively. finish() releases the
      delegation session's stack storage back to the combiner and
      publish_combined wakes waiters; doing either while group members
      are still pending loses operations or wakes owners that observe
      themselves unfinished (DESIGN.md §13).

Requires the `clang` Python bindings plus a loadable libclang shared
library. When either is missing the tool prints a notice and exits 77
(the CTest SKIP_RETURN_CODE convention) so local GCC-only environments
degrade gracefully; CI installs libclang and runs it for real.

Modes:
  hcf_semalint.py -p BUILD_DIR [path-prefix...]
      Parse every translation unit in BUILD_DIR/compile_commands.json
      whose main file matches one of the path prefixes (default: all),
      with each TU's recorded flags.
  hcf_semalint.py file.cpp [file2.cpp...] [-- clang-args...]
      Parse the named files directly (fixture/selftest mode).

Findings honor the lexical linter's suppression grammar in the file the
finding lands in: `// lint:allow(rule)` on the flagged line or
`// lint:allow-file(rule)` anywhere in that file; both accept
comma-separated rule lists. `--only-under DIR` (repeatable) restricts
reporting to findings located under the given directories — the tree scan
uses it to keep test-only helper code out of scope.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import shlex
import sys

SKIP_EXIT = 77

RULES: dict[str, str] = {
    "sema-tx-transitive-purity":
        "no blocking/allocating/IO/strong call reachable from an "
        "htm::attempt body through any helper chain",
    "sema-telemetry-outside-tx":
        "no telemetry:: call reachable from an htm::attempt body",
    "sema-retire-before-publish":
        "publish_combined must be preceded by a (transitive) mark_done "
        "in the same function",
    "sema-delegated-retire-before-publish":
        "in apply_delegated* bodies, finish()/publish_combined must be "
        "preceded by a (transitive) mark_done",
}

# Callee names that make a transaction body impure, by category. Names are
# matched against the unqualified callee spelling; the substrate namespaces
# below are never descended into, so their internal uses never surface.
BLOCKING_NAMES = {
    "lock", "try_lock", "join", "sleep_for", "sleep_until", "yield",
    "wait", "wait_done", "wait_until_free", "wait_writeback_drain",
    "arrive_and_wait",
    # Parking tier (util/parking.hpp): a parked transaction deadlocks the
    # quiescence gate; on real HTM the deschedule aborts it. hcf::util is
    # deliberately NOT in CUTOFF_PREFIXES, so chains through TieredWait /
    # ParkableEpoch are followed to these sinks.
    "park", "park_if", "park_on_epoch", "futex_wait",
}
ALLOC_NAMES = {"malloc", "calloc", "realloc", "aligned_alloc", "free"}
IO_NAMES = {
    "printf", "fprintf", "vfprintf", "puts", "fputs", "putchar",
    "fwrite", "fopen", "fflush", "write",
}
STRONG_NAMES = {"strong_store", "strong_cas", "strong_fetch_add"}

# The sanctioned substrate: calls INTO these namespaces are the legitimate
# transactional API (htm::make, htm::retire_tx, TxCell reads, EBR), so the
# reachability walk classifies a call's name but never follows the edge.
# Third-party/system namespaces are cut for scale, not sanction.
CUTOFF_PREFIXES = (
    "hcf::htm", "hcf::mem", "hcf::telemetry",
    "std", "__gnu_cxx", "testing",
)

ALLOW_LINE_RE = re.compile(r"lint:allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"lint:allow-file\(([^)]*)\)")

MAX_DEPTH = 12  # helper-chain depth bound; protocol code is far shallower


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str,
                 chain: list[str]):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.chain = chain

    def __str__(self) -> str:
        via = f" [via {' -> '.join(self.chain)}]" if self.chain else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{via}"


def load_cindex():
    """Import clang.cindex and make sure a libclang is loadable; None if
    this environment cannot run the semantic linter."""
    try:
        from clang import cindex
    except Exception:
        return None
    override = os.environ.get("HCF_LIBCLANG")
    if override:
        try:
            cindex.Config.set_library_file(override)
        except Exception:
            pass
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    # The bindings imported but their default library lookup failed; scan
    # the usual distro install locations.
    patterns = [
        "/usr/lib/llvm-*/lib/libclang.so*",
        "/usr/lib/*/libclang-*.so*",
        "/usr/lib/*/libclang.so*",
        "/usr/local/lib/libclang.so*",
    ]
    candidates: list[str] = []
    for pat in patterns:
        candidates.extend(glob.glob(pat))
    for cand in sorted(set(candidates), reverse=True):
        try:
            cindex.Config.set_library_file(cand)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    return None


class TuAnalyzer:
    """Per-translation-unit analysis: call-graph reachability from
    htm::attempt bodies plus the publish/retire ordering check."""

    def __init__(self, cindex, tu, only_under: list[str]):
        self.ck = cindex.CursorKind
        self.tu = tu
        self.only_under = [os.path.abspath(p) for p in only_under]
        self.defs_by_name: dict[str, list] = {}
        self.func_defs: list = []
        self.attempt_sites: list = []
        self.findings: list[Finding] = []
        self._marks_done_memo: dict[str, bool] = {}
        self._file_cache: dict[str, list[str]] = {}
        self._index_tu()

    # -- indexing ----------------------------------------------------------

    def _index_tu(self) -> None:
        fn_kinds = (self.ck.FUNCTION_DECL, self.ck.CXX_METHOD,
                    self.ck.CONSTRUCTOR, self.ck.DESTRUCTOR,
                    self.ck.FUNCTION_TEMPLATE, self.ck.CONVERSION_FUNCTION)
        for cur in self.tu.cursor.walk_preorder():
            if cur.kind in fn_kinds and cur.is_definition():
                if cur.spelling:
                    self.defs_by_name.setdefault(cur.spelling,
                                                 []).append(cur)
                self.func_defs.append(cur)
            elif cur.kind == self.ck.CALL_EXPR and \
                    self.call_name(cur) == "attempt" and \
                    self._mentions_htm(cur):
                self.attempt_sites.append(cur)

    def _mentions_htm(self, call) -> bool:
        toks = self._tokens(call)
        # Only look at the callee portion (tokens before the first '(').
        for i, t in enumerate(toks):
            if t == "(":
                return "htm" in toks[:i]
        return "htm" in toks

    def _tokens(self, cur) -> list[str]:
        try:
            return [t.spelling for t in cur.get_tokens()]
        except Exception:
            return []

    # -- cursor helpers ----------------------------------------------------

    def call_name(self, call) -> str:
        if call.spelling:
            return call.spelling
        ref = call.referenced
        if ref is not None and ref.spelling:
            return ref.spelling
        toks = self._tokens(call)
        for i, t in enumerate(toks):
            if t == "(" and i > 0:
                return toks[i - 1]
        return ""

    def qualified_name(self, cur) -> str:
        parts: list[str] = []
        c = cur
        while c is not None and c.kind != self.ck.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def location(self, cur) -> tuple[str, int]:
        loc = cur.location
        path = loc.file.name if loc.file is not None else "<unknown>"
        return os.path.abspath(path), loc.line

    def in_scope(self, path: str) -> bool:
        if not self.only_under:
            return True
        return any(os.path.commonpath([path, root]) == root
                   for root in self.only_under
                   if self._same_drive(path, root))

    @staticmethod
    def _same_drive(a: str, b: str) -> bool:
        try:
            os.path.commonpath([a, b])
            return True
        except ValueError:
            return False

    def callee_defs(self, call) -> list:
        """Definitions a call may dispatch to: the resolved referent when
        libclang has one, otherwise every same-named definition in the TU
        (covers dependent calls in template patterns and virtual calls,
        deliberately over-approximating)."""
        ref = call.referenced
        if ref is not None:
            d = ref.get_definition()
            if d is not None:
                return [d]
        name = self.call_name(call)
        return self.defs_by_name.get(name, []) if name else []

    def descend_ok(self, func_def) -> bool:
        qual = self.qualified_name(func_def)
        for prefix in CUTOFF_PREFIXES:
            if qual == prefix or qual.startswith(prefix + "::"):
                return False
        path, _ = self.location(func_def)
        return path != "<unknown>" and not path.startswith("/usr/")

    def calls_in(self, body):
        """Every CALL_EXPR / CXX_NEW_EXPR under `body` in source order."""
        out = []
        for node in body.walk_preorder():
            if node.kind in (self.ck.CALL_EXPR, self.ck.CXX_NEW_EXPR):
                out.append(node)
        return out

    # -- suppression -------------------------------------------------------

    def _file_lines(self, path: str) -> list[str]:
        if path not in self._file_cache:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    self._file_cache[path] = f.read().splitlines()
            except OSError:
                self._file_cache[path] = []
        return self._file_cache[path]

    def suppressed(self, path: str, line: int, rule: str) -> bool:
        lines = self._file_lines(path)
        def names(rx, text):
            for m in rx.finditer(text):
                for r in m.group(1).split(","):
                    yield r.strip()
        if rule in names(ALLOW_FILE_RE, "\n".join(lines)):
            return True
        if 1 <= line <= len(lines):
            return rule in names(ALLOW_LINE_RE, lines[line - 1])
        return False

    def report(self, path: str, line: int, rule: str, message: str,
               chain: list[str]) -> None:
        if not self.in_scope(path):
            return
        if self.suppressed(path, line, rule):
            return
        rel = os.path.relpath(path)
        key = (rel, line, rule)
        if any((f.path, f.line, f.rule) == key for f in self.findings):
            return
        self.findings.append(Finding(rel, line, rule, message, chain))

    # -- rule 1+2: transitive reachability from attempt bodies -------------

    def classify_impure(self, call, name: str):
        if call.kind == self.ck.CXX_NEW_EXPR:
            return ("allocation (new expression)",
                    "transactional allocations go through htm::make")
        if name in BLOCKING_NAMES:
            return (f"blocking call '{name}'",
                    "transactions must never block (deadlocks against "
                    "the quiescence gate)")
        if name in ALLOC_NAMES:
            return (f"raw allocation '{name}'",
                    "transactional allocations go through htm::make")
        if name in IO_NAMES:
            return (f"I/O call '{name}'",
                    "I/O is a non-transactional side effect")
        if name in STRONG_NAMES:
            return (f"strong mutation '{name}'",
                    "strong ops doom the enclosing transaction")
        return None

    def is_telemetry_call(self, call, name: str) -> bool:
        ref = call.referenced
        if ref is not None and \
                self.qualified_name(ref).startswith("hcf::telemetry"):
            return True
        toks = self._tokens(call)
        for i, t in enumerate(toks[:-1]):
            if t == "telemetry" and toks[i + 1] == "::":
                return True
        return False

    def check_attempt_sites(self) -> None:
        for site in self.attempt_sites:
            lam = next((n for n in site.walk_preorder()
                        if n.kind == self.ck.LAMBDA_EXPR), None)
            if lam is None:
                continue
            site_path, site_line = self.location(site)
            origin = f"{os.path.basename(site_path)}:{site_line}"
            self._walk_body(lam, [f"attempt@{origin}"], set(), 0)

    def _walk_body(self, body, chain: list[str], visited: set,
                   depth: int) -> None:
        if depth > MAX_DEPTH:
            return
        for call in self.calls_in(body):
            name = self.call_name(call)
            path, line = self.location(call)
            verdict = self.classify_impure(call, name)
            if verdict is not None:
                what, why = verdict
                self.report(path, line, "sema-tx-transitive-purity",
                            f"{what} reachable from a transaction body; "
                            f"{why}", chain)
                continue
            if self.is_telemetry_call(call, name):
                self.report(path, line, "sema-telemetry-outside-tx",
                            "telemetry call reachable from a transaction "
                            "body; event records survive aborts and "
                            "replay on retry — hook around the attempt",
                            chain)
                continue
            for target in self.callee_defs(call):
                if not self.descend_ok(target):
                    continue
                usr = target.get_usr() or f"{self.location(target)}"
                if usr in visited:
                    continue
                visited.add(usr)
                tpath, tline = self.location(target)
                step = f"{name}@{os.path.basename(tpath)}:{tline}"
                self._walk_body(target, chain + [step], visited,
                                depth + 1)

    # -- rule 3: retire-before-publish ------------------------------------

    def marks_done(self, func_def, depth: int = 0) -> bool:
        """True if the function (transitively) calls mark_done."""
        usr = func_def.get_usr() or str(self.location(func_def))
        if usr in self._marks_done_memo:
            return self._marks_done_memo[usr]
        self._marks_done_memo[usr] = False  # cycle guard
        result = False
        if depth <= MAX_DEPTH:
            for call in self.calls_in(func_def):
                name = self.call_name(call)
                if name == "mark_done":
                    result = True
                    break
                if name == "publish_combined":
                    continue
                for target in self.callee_defs(call):
                    if self.descend_ok(target) and \
                            self.marks_done(target, depth + 1):
                        result = True
                        break
                if result:
                    break
        self._marks_done_memo[usr] = result
        return result

    def check_retire_before_publish(self) -> None:
        for func in self.func_defs:
            calls = [(c, self.call_name(c)) for c in self.calls_in(func)]
            publishes = [(c, i) for i, (c, n) in enumerate(calls)
                         if n == "publish_combined"]
            if not publishes:
                continue
            for call, idx in publishes:
                ok = False
                for before, name in (cn for cn in calls[:idx]):
                    if name == "mark_done":
                        ok = True
                        break
                    if any(self.descend_ok(t) and self.marks_done(t)
                           for t in self.callee_defs(before)):
                        ok = True
                        break
                if ok:
                    continue
                path, line = self.location(call)
                fq = self.qualified_name(func)
                self.report(
                    path, line, "sema-retire-before-publish",
                    f"publish_combined in '{fq}' with no preceding "
                    "(transitive) mark_done; publishing the combined "
                    "epoch before retiring ops wakes waiters that still "
                    "observe themselves pending (DESIGN.md §9.3)",
                    [])

    # -- rule 4: delegated retire-before-publish ---------------------------

    def check_delegated_retire_before_publish(self) -> None:
        """Delegated-apply bodies: the group's completion publication
        (DelegateGroup::finish, or a direct publish_combined) must come
        after every member op is retired — the sweeping combiner frees the
        session's stack storage the moment finish() lands."""
        for func in self.func_defs:
            if not (func.spelling or "").startswith("apply_delegated"):
                continue
            calls = [(c, self.call_name(c)) for c in self.calls_in(func)]
            for idx, (call, name) in enumerate(calls):
                if name not in ("finish", "publish_combined"):
                    continue
                ok = False
                for before, bname in calls[:idx]:
                    if bname == "mark_done":
                        ok = True
                        break
                    if any(self.descend_ok(t) and self.marks_done(t)
                           for t in self.callee_defs(before)):
                        ok = True
                        break
                if ok:
                    continue
                path, line = self.location(call)
                fq = self.qualified_name(func)
                self.report(
                    path, line, "sema-delegated-retire-before-publish",
                    f"'{name}' in delegated-apply '{fq}' with no preceding "
                    "(transitive) mark_done; publishing a delegated "
                    "group's completion before retiring its ops releases "
                    "session storage (or wakes owners) while operations "
                    "are still pending (DESIGN.md §13)",
                    [])

    def run(self) -> list[Finding]:
        self.check_attempt_sites()
        self.check_retire_before_publish()
        self.check_delegated_retire_before_publish()
        return self.findings


# -- driving ---------------------------------------------------------------

def tu_diags_fatal(tu) -> list[str]:
    fatal = []
    for d in tu.diagnostics:
        if d.severity >= d.Error:
            fatal.append(str(d))
    return fatal


def compile_commands_entries(build_dir: str):
    cc_path = os.path.join(build_dir, "compile_commands.json")
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)
    for entry in entries:
        path = os.path.abspath(
            os.path.join(entry["directory"], entry["file"]))
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry["command"])
        args = []
        skip_next = False
        for a in argv[1:]:  # drop the compiler itself
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", entry["file"], path):
                continue
            if a == "-o":
                skip_next = True
                continue
            args.append(a)
        yield path, args


def analyze(cindex, units, only_under: list[str],
            verbose: bool) -> tuple[list[Finding], int]:
    index = cindex.Index.create()
    findings: list[Finding] = []
    errors = 0
    for path, args in units:
        try:
            tu = index.parse(path, args=args)
        except Exception as e:
            print(f"hcf_semalint: error: cannot parse {path}: {e}",
                  file=sys.stderr)
            errors += 1
            continue
        fatal = tu_diags_fatal(tu)
        if fatal:
            errors += 1
            print(f"hcf_semalint: error: {path} has parse errors:",
                  file=sys.stderr)
            for d in fatal[:5]:
                print(f"  {d}", file=sys.stderr)
            continue
        if verbose:
            print(f"hcf_semalint: analyzing {path}", file=sys.stderr)
        findings.extend(TuAnalyzer(cindex, tu, only_under).run())
    # Dedup across TUs (the same header finding surfaces in many TUs).
    seen = set()
    unique = []
    for f in findings:
        key = (f.path, f.line, f.rule)
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    return unique, errors


def main(argv: list[str]) -> int:
    if "--" in argv:
        split = argv.index("--")
        argv, clang_args = argv[:split], argv[split + 1:]
    else:
        clang_args = []

    parser = argparse.ArgumentParser(
        description="Cross-function semantic lint of HCF protocol "
                    "invariants (libclang).")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (direct mode) or path prefixes "
                             "to filter compile_commands entries (-p mode)")
    parser.add_argument("-p", "--build-dir", default=None,
                        help="build directory containing "
                             "compile_commands.json")
    parser.add_argument("--only-under", action="append", default=[],
                        help="report findings only under this directory "
                             "(repeatable)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids with descriptions and exit")
    parser.add_argument("-q", "--quiet", action="store_true")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.format == "json":
            print(json.dumps(
                [{"rule": r, "description": d}
                 for r, d in sorted(RULES.items())], indent=2))
        else:
            width = max(len(r) for r in RULES)
            for r, d in sorted(RULES.items()):
                print(f"{r:<{width}}  {d}")
        return 0

    cindex = load_cindex()
    if cindex is None:
        print("hcf_semalint: libclang not available (install the 'clang' "
              "python bindings + libclang, or set HCF_LIBCLANG); skipping",
              file=sys.stderr)
        return SKIP_EXIT

    if args.build_dir:
        try:
            entries = list(compile_commands_entries(args.build_dir))
        except (OSError, ValueError, KeyError) as e:
            print(f"hcf_semalint: error: cannot read compile commands in "
                  f"{args.build_dir}: {e}", file=sys.stderr)
            return 2
        prefixes = [os.path.abspath(p) for p in args.paths]
        units = [(path, a) for path, a in entries
                 if not prefixes or
                 any(path.startswith(p + os.sep) or path == p
                     for p in prefixes)]
        if not units:
            print("hcf_semalint: error: no matching translation units",
                  file=sys.stderr)
            return 2
    else:
        if not args.paths:
            parser.error("paths are required unless -p or --list-rules "
                         "is given")
        for p in args.paths:
            if not os.path.isfile(p):
                print(f"hcf_semalint: error: no such file: {p}",
                      file=sys.stderr)
                return 2
        units = [(os.path.abspath(p), clang_args) for p in args.paths]

    findings, errors = analyze(cindex, units, args.only_under,
                               args.verbose)
    if args.format == "json":
        print(json.dumps(
            [{"path": f.path, "line": f.line, "rule": f.rule,
              "message": f.message, "chain": f.chain}
             for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
    if not args.quiet:
        print(f"hcf_semalint: {len(findings)} finding(s), "
              f"{errors} TU error(s)", file=sys.stderr)
    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
