#!/usr/bin/env python3
"""Selftest for the Clang Thread-Safety annotations: compiles every
fixture under tsa_fixtures/ against the real repo headers with
`-Wthread-safety -Werror=thread-safety`.

good_* fixtures must compile clean — they are the positive control
proving the annotations accept the correct discipline. bad_* fixtures
must FAIL to compile, and the compiler output must contain every
`// expect-tsa: substring` marker in the fixture — proving the
annotations reject the specific misuse each fixture stages.

Needs a clang++ (the analysis is clang-only). Search order: --clang,
$HCF_CLANGXX, `clang++` on PATH, then versioned /usr/bin/clang++-N.
Exits 77 (the CTest SKIP_RETURN_CODE convention) when none is found, so
GCC-only environments skip rather than fail.
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import shutil
import subprocess
import sys

SKIP_EXIT = 77
HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
FIXTURES = os.path.join(HERE, "tsa_fixtures")
EXPECT_RE = re.compile(r"//\s*expect-tsa:\s*(.+?)\s*$")

BASE_FLAGS = [
    "-fsyntax-only", "-std=c++20",
    "-I", os.path.join(ROOT, "src"),
    "-Wthread-safety", "-Werror=thread-safety",
]


def find_clang(explicit: str | None) -> str | None:
    candidates = []
    if explicit:
        candidates.append(explicit)
    env = os.environ.get("HCF_CLANGXX")
    if env:
        candidates.append(env)
    candidates.append("clang++")
    for cand in candidates:
        resolved = cand if os.path.isfile(cand) else shutil.which(cand)
        if resolved:
            return resolved
    versioned = sorted(glob.glob("/usr/bin/clang++-*") +
                       glob.glob("/usr/local/bin/clang++-*"), reverse=True)
    return versioned[0] if versioned else None


def is_clang(compiler: str) -> bool:
    try:
        out = subprocess.run([compiler, "--version"], capture_output=True,
                             text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return False
    return "clang" in out.stdout.lower()


def expected_substrings(path: str) -> list[str]:
    out = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = EXPECT_RE.search(line)
            if m:
                out.append(m.group(1))
    return out


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Compile TSA fixtures with clang -Wthread-safety and "
                    "assert the expected accept/reject behavior.")
    parser.add_argument("--clang", default=None,
                        help="clang++ executable to use")
    args = parser.parse_args()

    clang = find_clang(args.clang)
    if clang is None or not is_clang(clang):
        print("tsa_selftest: no clang++ found (the thread-safety analysis "
              "is clang-only); skipping", file=sys.stderr)
        return SKIP_EXIT

    fixtures = sorted(
        os.path.join(FIXTURES, name)
        for name in os.listdir(FIXTURES)
        if name.endswith(".cpp"))
    if not fixtures:
        print("tsa_selftest: no fixtures found", file=sys.stderr)
        return 1

    failures = 0
    for path in fixtures:
        name = os.path.basename(path)
        proc = subprocess.run([clang] + BASE_FLAGS + [path],
                              capture_output=True, text=True)
        expected = expected_substrings(path)

        if name.startswith("good_"):
            if expected:
                print(f"FAIL {name}: good fixture carries expect-tsa "
                      "markers")
                failures += 1
            elif proc.returncode != 0:
                print(f"FAIL {name}: expected clean compile, got:")
                print(proc.stderr)
                failures += 1
            else:
                print(f"ok   {name}: clean under -Wthread-safety")
            continue

        # bad_*: must fail, with every marked diagnostic present.
        if not expected:
            print(f"FAIL {name}: bad fixture has no expect-tsa markers")
            failures += 1
            continue
        if proc.returncode == 0:
            print(f"FAIL {name}: compiled clean but must be rejected")
            failures += 1
            continue
        missing = [s for s in expected if s not in proc.stderr]
        if missing:
            print(f"FAIL {name}: diagnostics missing substrings:")
            for s in missing:
                print(f"  expected: {s!r}")
            print("  got:")
            print(proc.stderr)
            failures += 1
            continue
        print(f"ok   {name}: rejected with expected diagnostics")

    if failures:
        print(f"tsa_selftest: {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    print(f"tsa_selftest: {len(fixtures)} fixtures ok ({clang})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
